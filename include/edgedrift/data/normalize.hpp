// Feature scaling. The OS-ELM projection uses bounded random weights, so
// inputs are expected roughly in [0, 1] (min-max) or standardized (z-score);
// these scalers are fit on the initial training window and applied to the
// stream — exactly the on-device-compatible preprocessing the paper's
// setting permits (no global statistics of the unseen stream).
#pragma once

#include <vector>

#include "edgedrift/data/stream.hpp"

namespace edgedrift::data {

/// Per-dimension min-max scaler mapping the fit range to [0, 1].
class MinMaxScaler {
 public:
  /// Learns per-dimension ranges from the rows of `x`.
  void fit(const linalg::Matrix& x);

  /// Scales one sample in place (values outside the fit range are clamped
  /// only if `clamp` was requested).
  void transform(std::span<double> x) const;

  /// Scales every row of a dataset in place.
  void transform(Dataset& dataset) const;

  bool fitted() const { return !min_.empty(); }
  bool clamp = false;

 private:
  std::vector<double> min_;
  std::vector<double> inv_range_;
};

/// Per-dimension standardization to zero mean / unit variance.
class ZScoreScaler {
 public:
  void fit(const linalg::Matrix& x);
  void transform(std::span<double> x) const;
  void transform(Dataset& dataset) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace edgedrift::data
