// Synthetic stand-in for the paper's NSL-KDD evaluation stream.
//
// Substitution note (see DESIGN.md section 3): the paper draws 2522 initial
// training samples and a 22701-sample test stream from the "normal" and
// "neptune" classes of NSL-KDD (38 numeric features after preprocessing),
// with the distribution shifting at the 8333rd test sample. What the
// evaluation actually exercises is: a 38-dimensional, 2-class labeled
// stream, separable before the drift, whose class-conditional distributions
// move at a known index so that (a) the pre-drift model's anomaly scores
// rise and (b) its accuracy degrades until retraining. This generator
// reproduces exactly those properties with seeded Gaussian class clusters:
// the post-drift concept moves the attack class partway toward the normal
// class (causing misclassification) and displaces both clusters off the
// trained manifold (raising reconstruction error).
#pragma once

#include <cstddef>
#include <cstdint>

#include "edgedrift/data/drift_stream.hpp"
#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/stream.hpp"

namespace edgedrift::data {

/// Shape and difficulty parameters of the NSL-KDD-like stream.
struct NslKddLikeConfig {
  std::size_t train_size = 2522;   ///< Paper: 2522 initial samples.
  std::size_t test_size = 22701;   ///< Paper: 22701 test samples.
  std::size_t drift_point = 8333;  ///< Paper: drift at the 8333rd sample.
  std::uint64_t seed = 42;

  /// L2 distance between the class means (pre and post drift). Must exceed
  /// the within-class shell radius noise*sqrt(38) (~1.9) for sequential
  /// k-means to separate the clusters — NSL-KDD's normal and neptune
  /// classes are strongly separated, and this default mirrors that.
  double class_separation = 3.2;
  double noise = 0.30;            ///< Pre-drift per-dimension stddev.
  double post_noise = 0.35;       ///< Post-drift per-dimension stddev.
  /// Cosine between the pre- and post-drift class-separation directions.
  /// Small values rotate the attack cluster into a region the stale model
  /// does not reconstruct, degrading its accuracy until retraining.
  double attack_direction_overlap = 0.55;
  /// L2 magnitude of the off-manifold displacement both classes receive at
  /// the drift. Must be large relative to the per-class scatter for the
  /// Eq. 1 threshold to be crossable (the paper notes the centroid
  /// displacement is small against that threshold, which is what makes the
  /// proposed method slower to detect than the batch baselines).
  double manifold_shift = 2.2;
};

/// NSL-KDD-like stream factory.
class NslKddLike {
 public:
  static constexpr std::size_t kDim = 38;  ///< Paper: 38 input features.
  static constexpr std::size_t kNumLabels = 2;  ///< normal / neptune.

  explicit NslKddLike(NslKddLikeConfig config = {});

  const NslKddLikeConfig& config() const { return config_; }

  /// The stationary pre-drift concept.
  const GaussianConcept& pre_concept() const { return pre_; }

  /// The stationary post-drift concept.
  const GaussianConcept& post_concept() const { return post_; }

  /// `train_size` labeled samples from the pre-drift concept.
  Dataset training(util::Rng& rng) const;

  /// The full test stream: sudden drift at `drift_point`.
  Dataset test_stream(util::Rng& rng) const;

 private:
  NslKddLikeConfig config_;
  GaussianConcept pre_;
  GaussianConcept post_;
};

}  // namespace edgedrift::data
