// Drift scenario compiler: a declarative ScenarioSpec (parsed from JSON or
// built from a named preset) compiles into a deterministic, seeded labeled
// stream with ground-truth drift annotations and a divergence-over-time
// trace emitted alongside the samples.
//
// The spec describes *what* the drift should look like — prior (P(X)) vs.
// conditional (P(Y|X)) drift, abrupt / gradual (sigmoid-mixed) / recurrent
// shape, multiple drift points, label noise — and *how strong* it should
// be: drift_magnitude_prior is a target Hellinger distance in [0, 1), and
// the compiler inverts the closed-form Hellinger of diagonal Gaussians to
// place the shifted concept exactly that far from its predecessor. The
// compiled stream therefore carries its own measuring stick: evaluation
// code never has to guess how hard a scenario is.
//
// Everything is reproducible bit-for-bit from (spec, spec.seed): the
// compiler draws from a single util::Rng in a fixed order, so two
// compilations of the same spec are identical down to the last bit —
// the property the golden scenario transcript pins.
//
// The low-level rendering loop (render_drift_stream) is shared with the
// legacy Figure-1 composers in drift_stream.hpp, which are now thin
// wrappers over the same executor.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/data/traffic.hpp"
#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::data {

/// How a drift edge transitions between concepts.
enum class DriftShape {
  kAbrupt,     ///< Instant switch at the drift point.
  kGradual,    ///< Mixing probability ramps across drift_width samples.
  kRecurrent,  ///< Abrupt alternation back and forth between two concepts.
};

/// Mixing-probability curve of a gradual transition.
enum class MixCurve {
  kLinear,   ///< p(t) = t — the legacy make_gradual_drift ramp.
  kSigmoid,  ///< p(t) = 1 / (1 + e^{-12 (t - 1/2)}) — the literature's
             ///< "sigmoid drift"; both concepts coexist near the midpoint.
};

/// Ground truth for one drift edge of a compiled scenario.
struct DriftAnnotation {
  std::size_t start = 0;  ///< First stream index affected by the edge.
  std::size_t end = 0;    ///< First index of the pure post-edge concept
                          ///< (== start for an abrupt edge).
  DriftShape shape = DriftShape::kAbrupt;
  std::size_t from_concept = 0;  ///< Concept index before the edge.
  std::size_t to_concept = 0;    ///< Concept index after the edge.
  bool prior = false;            ///< P(X) moved across this edge.
  bool conditional = false;      ///< P(Y|X) moved across this edge.
};

/// Declarative description of one drift scenario. Field names mirror the
/// JSON keys accepted by parse_scenario_json().
struct ScenarioSpec {
  std::string name = "scenario";

  // Geometry of the base concept (concept 0): num_labels diagonal Gaussian
  // clusters in num_features dimensions, class c centered at
  // class_separation along dimension (c % num_features).
  std::size_t num_features = 8;
  std::size_t num_labels = 2;
  double class_separation = 4.0;
  double stddev = 0.5;

  // Stream layout: train_size clean samples from concept 0 for the initial
  // fit, then n_instances streamed samples with the first drift at burn_in.
  std::size_t train_size = 600;
  std::size_t n_instances = 4000;
  std::size_t burn_in = 1000;

  // Drift schedule. num_drift_points edges are spaced evenly across
  // [burn_in, n_instances). kRecurrent alternates concept 0 <-> 1;
  // kAbrupt/kGradual walk through a fresh concept per edge.
  DriftShape shape = DriftShape::kAbrupt;
  MixCurve curve = MixCurve::kSigmoid;
  std::size_t drift_width = 0;  ///< Transition samples of a gradual edge.
  std::size_t num_drift_points = 1;

  // Drift content. Prior drift shifts every cluster mean by a vector whose
  // length is calibrated so the per-class Hellinger distance between
  // consecutive concepts equals drift_magnitude_prior. Conditional drift
  // remaps a drift_magnitude_conditional fraction of post-drift samples'
  // labels through the cyclic permutation (label + 1) % num_labels without
  // touching P(X).
  bool drift_priors = true;
  bool drift_conditional = false;
  double drift_magnitude_prior = 0.7;        ///< Target Hellinger in [0, 1).
  double drift_magnitude_conditional = 0.0;  ///< Remapped label mass [0, 1].

  /// Probability that a streamed sample's label is flipped to a uniformly
  /// random other label (applied after any conditional remap; the training
  /// set stays clean).
  double noise_level = 0.0;

  /// Tumbling-window width of the divergence-over-time trace; 0 disables
  /// the trace. The first window of the stream is the reference.
  std::size_t divergence_window = 200;

  /// Traffic shape for serving-layer replays (eval/sweep.hpp): streams > 1
  /// routes the scenario through PipelineManager::submit_batch under this
  /// arrival pattern instead of the single-pipeline path.
  TrafficSpec traffic;

  std::uint64_t seed = 7;
};

/// Divergence-over-time ground truth: each tumbling window of the stream
/// compared against the reference (first) window.
struct DivergenceTrace {
  std::size_t window = 0;          ///< Tumbling-window width.
  std::vector<std::size_t> index;  ///< Stream index of each window's end.
  /// Mean per-feature histogram Hellinger distance to the reference window.
  std::vector<double> hellinger;
  /// Per-feature 1-D Wasserstein-1 distance to the reference window
  /// (rows align with `index`, columns with features).
  linalg::Matrix wasserstein;
  /// Row means of `wasserstein` — the scalar W1 trace.
  std::vector<double> wasserstein_mean;
};

/// Everything the compiler produces for one spec.
struct CompiledScenario {
  ScenarioSpec spec;
  Dataset train;   ///< Clean concept-0 samples for the initial fit.
  Dataset stream;  ///< The drifting test stream.
  std::vector<DriftAnnotation> annotations;  ///< Ground-truth drift edges.
  DivergenceTrace divergence;
  /// Closed-form per-class Hellinger distance between consecutive concepts
  /// actually achieved by the calibration (== drift_magnitude_prior up to
  /// floating-point inversion error when drift_priors is set).
  double calibrated_hellinger = 0.0;
};

/// Compiles `spec` into a concrete stream. Deterministic: equal specs
/// produce bit-identical outputs.
CompiledScenario compile_scenario(const ScenarioSpec& spec);

/// The concept the compiled scenario samples from in segment `index`
/// (0 = the trained concept). Exposed so tests can verify the calibration
/// against the closed form without re-deriving the geometry.
GaussianConcept scenario_concept(const ScenarioSpec& spec, std::size_t index);

/// Closed-form Hellinger distance between two aligned diagonal-Gaussian
/// mixtures: per-class Bhattacharyya product over dimensions, combined as
/// the weight-averaged per-class squared Hellinger (exact for well-
/// separated components, which is how scenario concepts are laid out).
double gaussian_hellinger(const GaussianConcept& a, const GaussianConcept& b);

/// The named presets behind scenarios/<name>.json and the sweep harness's
/// default grid: "abrupt", "gradual", "recurrent", "boundary",
/// "label-noise", "bursty-traffic". Nullopt for unknown names.
std::optional<ScenarioSpec> scenario_preset(std::string_view name);

/// Names of all built-in presets, in the sweep harness's grid order.
std::span<const std::string_view> scenario_preset_names();

// ---------------------------------------------------------------- JSON I/O
// Hand-rolled parser (no external deps) for the scenario JSON dialect
// documented on ScenarioSpec. Unknown keys are rejected so a typo cannot
// silently fall back to a default.

/// Parses one scenario object from JSON text. On failure returns nullopt
/// and, when `error` is non-null, stores a human-readable reason.
std::optional<ScenarioSpec> parse_scenario_json(std::string_view text,
                                                std::string* error = nullptr);

/// Reads and parses a scenario JSON file.
std::optional<ScenarioSpec> load_scenario_file(const std::string& path,
                                               std::string* error = nullptr);

/// Renders `spec` as the JSON dialect parse_scenario_json accepts
/// (round-trips exactly: parse(render(s)) == s).
std::string scenario_to_json(const ScenarioSpec& spec);

// ------------------------------------------------------- shared executor
// The rendering loop behind both the compiler and the legacy Figure-1
// composers (drift_stream.hpp).

/// One edge of a mixing program: before `start` samples come from the
/// previous source; across [start, end) each sample is drawn from `to`
/// with probability mix(t) (one rng.bernoulli per sample); at and after
/// `end` the source is pure `to`. A width-0 edge (start == end) switches
/// instantly and draws no mixing randomness — exactly the legacy sudden
/// composer's RNG sequence.
struct MixEdge {
  std::size_t start = 0;
  std::size_t end = 0;
  const ConceptGenerator* to = nullptr;
  MixCurve curve = MixCurve::kLinear;
};

/// Renders `n` samples walking `edges` (sorted, non-overlapping) from
/// `initial`. One sample() call per row; gradual edges add one bernoulli
/// per in-transition row. `bernoulli_every_row` reproduces the legacy
/// make_gradual_drift RNG sequence, which drew one (p-clamped) bernoulli
/// on every row of the stream, pure segments included.
Dataset render_drift_stream(const ConceptGenerator& initial,
                            std::span<const MixEdge> edges, std::size_t n,
                            util::Rng& rng, bool bernoulli_every_row = false);

/// Incremental rendering: the distribution itself interpolates from `a` to
/// `b` across [start, end), quantized to 64 interpolation steps so the
/// concept is not rebuilt per sample. The executor behind
/// make_incremental_drift.
Dataset render_incremental_stream(const GaussianConcept& a,
                                  const GaussianConcept& b, std::size_t n,
                                  std::size_t start, std::size_t end,
                                  util::Rng& rng);

}  // namespace edgedrift::data
