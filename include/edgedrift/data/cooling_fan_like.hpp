// Synthetic stand-in for the paper's cooling-fan vibration dataset [16].
//
// Substitution note (see DESIGN.md section 3): the original dataset holds
// 511-bin frequency spectra (1-511 Hz) of cooling fans measured with an
// industrial accelerometer, for a healthy fan and two damage modes (holes
// drilled in a blade; a chipped blade edge), in silent and noisy
// environments. The evaluation depends on (a) the 511-bin dimensionality,
// (b) distinguishable spectral signatures per condition, and (c) the exact
// drift schedules (drift at sample 120; gradual mix 120-600; reoccurrence
// 120-170). This generator synthesizes physically plausible fan spectra —
// a harmonic series at the rotation frequency, damage-specific sidebands /
// sub-harmonics / broadband energy, an environment-dependent noise floor —
// and composes them on the paper's schedules.
#pragma once

#include <cstddef>
#include <cstdint>

#include "edgedrift/data/stream.hpp"

namespace edgedrift::data {

/// Mechanical condition of the simulated fan.
enum class FanCondition {
  kNormal,   ///< Healthy blades.
  kHoles,    ///< Holes drilled in one blade (paper's sudden-drift source).
  kChipped,  ///< Chipped blade edge (paper's gradual/reoccurring source).
};

/// Acoustic environment of the measurement.
enum class FanEnvironment {
  kSilent,  ///< Quiet room.
  kNoisy,   ///< Near a ventilation fan: raised floor + hum peaks.
};

/// Stationary spectrum generator for one (condition, environment) pair.
class FanSpectrumConcept : public ConceptGenerator {
 public:
  static constexpr std::size_t kBins = 511;  ///< 1 Hz .. 511 Hz.

  FanSpectrumConcept(FanCondition condition, FanEnvironment environment,
                     int label = 0);

  std::size_t dim() const override { return kBins; }
  std::size_t num_labels() const override { return 1; }
  int sample(util::Rng& rng, std::span<double> x) const override;

  FanCondition condition() const { return condition_; }
  FanEnvironment environment() const { return environment_; }

 private:
  FanCondition condition_;
  FanEnvironment environment_;
  int label_;
};

/// Stream schedules of the paper's Section 4.1.2.
struct CoolingFanLikeConfig {
  std::size_t train_size = 200;
  std::size_t stream_size = 700;      ///< Paper: 700 samples (Table 5).
  std::size_t drift_point = 120;      ///< All three streams drift here.
  std::size_t gradual_end = 600;      ///< Gradual mix ends here.
  std::size_t reoccur_end = 170;      ///< Old concept returns here.
  FanEnvironment environment = FanEnvironment::kSilent;
  std::uint64_t seed = 2023;
};

/// Cooling-fan-like stream factory.
class CoolingFanLike {
 public:
  static constexpr std::size_t kDim = FanSpectrumConcept::kBins;

  explicit CoolingFanLike(CoolingFanLikeConfig config = {});

  const CoolingFanLikeConfig& config() const { return config_; }

  /// Healthy-fan training spectra (label 0 throughout — the fan model is a
  /// single-pattern anomaly detector, C = 1).
  Dataset training(util::Rng& rng) const;

  /// Sudden drift: normal -> holes at drift_point.
  Dataset sudden_stream(util::Rng& rng) const;

  /// Gradual drift: normal -> chipped, mixed over [drift_point, gradual_end).
  Dataset gradual_stream(util::Rng& rng) const;

  /// Reoccurring drift: chipped on [drift_point, reoccur_end), normal
  /// elsewhere.
  Dataset reoccurring_stream(util::Rng& rng) const;

 private:
  CoolingFanLikeConfig config_;
  FanSpectrumConcept normal_;
  FanSpectrumConcept holes_;
  FanSpectrumConcept chipped_;
};

}  // namespace edgedrift::data
