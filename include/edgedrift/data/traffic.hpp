// Traffic-shape generator: deterministic, seeded arrival processes for
// replaying a compiled scenario through the serving layer.
//
// A scenario stream says *what* samples arrive; a TrafficSpec says *when*
// and *where*: how many rows each submit_batch carries (uniform, Poisson,
// or bursty on/off with heavy-tailed burst durations — the standard
// self-similar traffic construction) and which managed stream receives
// them (round-robin with optional churn, so cold streams keep waking up
// under an eviction budget).
//
// The shaper is pure arithmetic over its own util::Rng: given the same
// (spec, seed) it emits the same batch-size and stream-id sequences, so a
// serving-layer replay is as reproducible as the scenario itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "edgedrift/util/rng.hpp"

namespace edgedrift::data {

/// Arrival-size process of one replay.
enum class ArrivalPattern {
  kUniform,  ///< Every tick carries round(mean_batch) rows.
  kPoisson,  ///< Rows per tick ~ Poisson(mean_batch).
  kBursty,   ///< On/off: Poisson(burst_batch) rows per tick while a burst
             ///< lasts, Poisson(idle_batch) between bursts; burst and idle
             ///< durations are Pareto(alpha)-distributed ticks, whose heavy
             ///< tail makes the aggregate self-similar.
};

/// Name <-> enum helpers ("uniform", "poisson", "bursty").
const char* arrival_pattern_name(ArrivalPattern pattern);
bool arrival_pattern_from_name(std::string_view name, ArrivalPattern* out);

/// How a scenario is pushed through the serving layer.
struct TrafficSpec {
  ArrivalPattern pattern = ArrivalPattern::kUniform;
  /// Mean rows per arrival tick (uniform / Poisson; >= 1 effective).
  double mean_batch = 1.0;
  /// Managed streams the replay spreads arrivals over. 1 keeps the
  /// single-pipeline path; > 1 routes through PipelineManager.
  std::size_t streams = 1;
  /// Per-tick probability that the round-robin cursor teleports to a
  /// uniformly random stream (stream churn: idle/cold streams wake).
  double churn = 0.0;
  /// kBursty: mean rows per tick inside / outside a burst.
  double burst_batch = 32.0;
  double idle_batch = 1.0;
  /// kBursty: Pareto shape of the on/off durations. 1 < alpha <= 2 gives
  /// infinite-variance periods (self-similar aggregate); larger alpha
  /// tames the tail.
  double pareto_alpha = 1.5;
  /// kBursty: mean ticks per on/off period.
  double mean_period = 64.0;
};

/// Deterministic arrival generator. next_batch() yields the rows of the
/// next submit_batch (always >= 1, so a replay terminates); next_stream()
/// yields the receiving stream id.
class TrafficShaper {
 public:
  TrafficShaper(const TrafficSpec& spec, std::uint64_t seed);

  /// Rows the next arrival carries (>= 1).
  std::size_t next_batch();

  /// Stream receiving the next arrival: round-robin over [0, streams),
  /// with a churn-probability jump to a random position.
  std::size_t next_stream();

  const TrafficSpec& spec() const { return spec_; }

 private:
  /// Poisson(mean) via inversion-by-multiplication (exact for the small
  /// means traffic uses), clamped to >= 1.
  std::size_t poisson_at_least_one(double mean);
  /// Pareto(alpha) duration in ticks with mean spec_.mean_period, >= 1.
  std::size_t pareto_period();

  TrafficSpec spec_;
  util::Rng rng_;
  std::size_t cursor_ = 0;       ///< Round-robin position.
  bool bursting_ = false;        ///< kBursty on/off state.
  std::size_t period_left_ = 0;  ///< Ticks until the state flips.
};

}  // namespace edgedrift::data
