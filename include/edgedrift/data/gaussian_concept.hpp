// Labeled Gaussian-mixture concept generator.
//
// Each label is a diagonal Gaussian cluster with a mixing weight. Two such
// concepts with different cluster parameters, spliced by the drift
// composers, reproduce the structure the paper's evaluations rely on: a
// labeled multivariate stream whose distribution changes at a known index.
#pragma once

#include <cstddef>
#include <vector>

#include "edgedrift/data/stream.hpp"

namespace edgedrift::data {

/// One labeled Gaussian cluster.
struct GaussianClass {
  std::vector<double> mean;
  std::vector<double> stddev;  ///< Per-dimension; broadcast if size 1.
  double weight = 1.0;         ///< Relative sampling frequency.
};

/// Mixture-of-labeled-Gaussians concept.
class GaussianConcept : public ConceptGenerator {
 public:
  explicit GaussianConcept(std::vector<GaussianClass> classes);

  std::size_t dim() const override { return classes_.front().mean.size(); }
  std::size_t num_labels() const override { return classes_.size(); }
  int sample(util::Rng& rng, std::span<double> x) const override;

  const GaussianClass& cls(std::size_t label) const {
    return classes_[label];
  }

  /// Linear interpolation of two concepts' means/stddevs (t in [0, 1]);
  /// used by the incremental-drift composer.
  static GaussianConcept interpolate(const GaussianConcept& a,
                                     const GaussianConcept& b, double t);

 private:
  std::vector<GaussianClass> classes_;
  std::vector<double> cumulative_weights_;
};

}  // namespace edgedrift::data
