// Drift-type stream composers — the four canonical shapes of the paper's
// Figure 1: sudden, gradual, incremental, and reoccurring drift.
#pragma once

#include <cstddef>

#include "edgedrift/data/gaussian_concept.hpp"
#include "edgedrift/data/stream.hpp"

namespace edgedrift::data {

/// Sudden drift: concept A for [0, drift_at), concept B afterwards.
Dataset make_sudden_drift(const ConceptGenerator& a, const ConceptGenerator& b,
                          std::size_t n, std::size_t drift_at,
                          util::Rng& rng);

/// Gradual drift: pure A before `start`; between `start` and `end` each
/// sample is drawn from B with probability ramping linearly 0 -> 1; pure B
/// after `end`. Both distributions appear during the transition — the
/// defining property of a gradual drift.
Dataset make_gradual_drift(const ConceptGenerator& a,
                           const ConceptGenerator& b, std::size_t n,
                           std::size_t start, std::size_t end,
                           util::Rng& rng);

/// Incremental drift: the distribution itself interpolates from A to B
/// between `start` and `end`; no sample is drawn from a pure mixture of the
/// endpoints during the transition.
Dataset make_incremental_drift(const GaussianConcept& a,
                               const GaussianConcept& b, std::size_t n,
                               std::size_t start, std::size_t end,
                               util::Rng& rng);

/// Reoccurring drift: A on [0, start), B on [start, end), then A again.
Dataset make_reoccurring_drift(const ConceptGenerator& a,
                               const ConceptGenerator& b, std::size_t n,
                               std::size_t start, std::size_t end,
                               util::Rng& rng);

}  // namespace edgedrift::data
