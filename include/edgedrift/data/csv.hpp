// Minimal CSV I/O so users can run the pipeline on real datasets (e.g. an
// actual NSL-KDD export or the cooling-fan GitHub traces) instead of the
// bundled synthetic generators.
#pragma once

#include <optional>
#include <string>

#include "edgedrift/data/stream.hpp"

namespace edgedrift::data {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = false;
  /// Column index holding the integer label; -1 = unlabeled (labels set to
  /// 0). Negative values below -1 index from the end (-2 = last column).
  int label_column = -1;
};

/// Loads a numeric CSV into a Dataset. Returns nullopt on I/O or parse
/// failure (a diagnostic is written to stderr).
std::optional<Dataset> load_csv(const std::string& path,
                                const CsvOptions& options = {});

/// Writes a Dataset as CSV (features first, label last). Returns false on
/// I/O failure.
bool save_csv(const std::string& path, const Dataset& dataset,
              char delimiter = ',');

}  // namespace edgedrift::data
