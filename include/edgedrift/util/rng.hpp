// Deterministic random number generation for edgedrift.
//
// All stochastic components in the library (ELM weight init, k-means++
// seeding, synthetic dataset generators) take an explicit Rng so experiments
// are reproducible bit-for-bit across runs. The generator is xoshiro256++
// seeded through splitmix64, which has far better statistical quality than
// std::minstd and is much cheaper than std::mt19937 — relevant on the
// microcontroller-class targets this library models.
#pragma once

#include <cstdint>
#include <cstddef>

namespace edgedrift::util {

/// xoshiro256++ PRNG with splitmix64 seeding and Gaussian sampling.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed`; afterwards the stream restarts.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::size_t uniform_index(std::size_t n);

  /// Standard normal sample (Box–Muller with caching of the second value).
  double gaussian();

  /// Normal sample with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p);

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace edgedrift::util
