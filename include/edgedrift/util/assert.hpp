// Lightweight runtime assertions for edgedrift.
//
// EDGEDRIFT_ASSERT is active in all build types (the library targets
// correctness-critical numerical code where silent corruption is worse than
// an abort); EDGEDRIFT_DASSERT compiles away in NDEBUG builds and is meant
// for hot inner loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace edgedrift::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "edgedrift assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace edgedrift::util

#define EDGEDRIFT_ASSERT(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::edgedrift::util::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define EDGEDRIFT_DASSERT(expr, msg) ((void)0)
#else
#define EDGEDRIFT_DASSERT(expr, msg) EDGEDRIFT_ASSERT(expr, msg)
#endif
