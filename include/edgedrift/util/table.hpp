// Console table formatting used by benches and examples to print the
// paper-style result tables.
#pragma once

#include <string>
#include <vector>

namespace edgedrift::util {

/// Builds fixed-width ASCII tables.
///
/// Usage:
///   Table t({"Method", "Accuracy", "Delay"});
///   t.add_row({"Quant Tree", "96.8", "296"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table with column-aligned cells and a header rule.
  std::string str() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string fmt(double value, int digits = 2);

/// Formats a byte count as "x.y kB".
std::string fmt_kb(std::size_t bytes, int digits = 1);

}  // namespace edgedrift::util
