// Wall-clock timing helpers used by the evaluation harness and benches.
#pragma once

#include <chrono>

namespace edgedrift::util {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last restart().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace edgedrift::util
