// Named-stage time accumulation, used to reproduce the paper's Table 6
// (per-sample execution-time breakdown of the proposed method).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edgedrift::util {

/// Accumulates wall-clock time into named stages.
///
/// Stages are created lazily on first use and remembered in first-use order,
/// which keeps breakdown tables stable across runs.
class StageTimer {
 public:
  /// RAII scope that adds its lifetime to one stage of the parent timer.
  class Scope {
   public:
    Scope(StageTimer& timer, std::string_view stage);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageTimer& timer_;
    std::size_t index_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Adds `seconds` to the named stage directly.
  void add(std::string_view stage, double seconds);

  /// Total accumulated seconds in `stage` (0 if the stage never ran).
  double seconds(std::string_view stage) const;

  /// Number of times `stage` was entered.
  std::uint64_t count(std::string_view stage) const;

  /// Mean milliseconds per entry of `stage` (0 if never entered).
  double mean_ms(std::string_view stage) const;

  /// Stage names in first-use order.
  std::vector<std::string> stages() const;

  /// Clears all accumulated data.
  void reset();

 private:
  struct Entry {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
  };

  std::size_t index_of(std::string_view stage);
  const Entry* find(std::string_view stage) const;

  std::vector<Entry> entries_;
};

}  // namespace edgedrift::util
