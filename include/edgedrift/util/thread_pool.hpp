// A small fixed-size thread pool used to parallelize the batch linear-algebra
// paths (initial ELM training, batch-based baseline detectors). The fully
// sequential hot path of the proposed detector never touches it — on the
// microcontroller targets the paper addresses there is exactly one core.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace edgedrift::util {

/// Fixed-size worker pool with a parallel_for convenience wrapper.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Enqueues a fire-and-forget task: no future, no promise allocation.
  /// The caller tracks completion itself (PipelineManager counts drain
  /// tasks with its own atomics) — the cheap dispatch for the serving path.
  void submit_detached(std::function<void()> task);

  /// Runs body(i) for i in [begin, end), split into contiguous chunks across
  /// the pool; blocks until all chunks are done. Runs inline when the range
  /// is small, the pool has a single worker, or the caller is itself a pool
  /// worker — a nested parallel_for would otherwise block a worker on
  /// futures that only another (possibly busy) worker can complete.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_chunk = 256);

  /// True when called from one of this pool's worker threads.
  static bool in_worker();

  /// Marks the calling thread as an inline worker: parallel_for on it runs
  /// the whole range inline, exactly as on a pool worker. PipelineManager's
  /// shard drain workers call this so a pipeline's internal batch kernels
  /// never fan out onto the shared pool mid-drain — cross-shard isolation
  /// is the point of sharding.
  static void mark_inline_worker();

  std::size_t size() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace edgedrift::util
