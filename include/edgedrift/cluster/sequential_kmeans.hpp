// Sequential (online) k-means — the centroid store shared by the proposed
// detector and the model-reconstruction phase (paper Algorithms 3 and 4).
//
// State is exactly C centroids and C sample counters; each incoming sample
// updates one centroid by a running mean. This O(C*D) footprint is the
// memory story of the whole paper.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::cluster {

/// C centroids updated one sample at a time.
class SequentialKMeans {
 public:
  /// C zero-initialized centroids of dimension D with zero counts.
  SequentialKMeans(std::size_t num_clusters, std::size_t dim);

  std::size_t num_clusters() const { return centroids_.rows(); }
  std::size_t dim() const { return centroids_.cols(); }

  /// Copies starting centroids (k x d) with the given per-cluster counts.
  void set_centroids(const linalg::Matrix& centroids,
                     std::span<const std::size_t> counts);

  /// Nearest centroid (squared L2) to x — Algorithm 4 line 2.
  std::size_t nearest(std::span<const double> x) const;

  /// Algorithm 4: assigns x to its nearest centroid, running-mean updates it,
  /// and returns the chosen cluster index.
  std::size_t update(std::span<const double> x);

  /// Running-mean update of a specific cluster (Algorithm 1 line 12 uses the
  /// label predicted by the model rather than the nearest centroid).
  void update_cluster(std::size_t cluster, std::span<const double> x);

  /// Algorithm 3 (Init_Coord): tries substituting x for each current
  /// coordinate; keeps the substitution that maximizes the sum of pairwise
  /// L1 distances between coordinates. Returns the replaced index or -1.
  int spread_init(std::span<const double> x);

  /// Sum over all pairs of coordinates of their L1 distance (the objective
  /// maximized by spread_init).
  double pairwise_l1_spread() const;

  /// Resets all centroids to zero and all counts to zero.
  void reset();

  /// Reorders clusters so position i holds the previous cluster perm[i].
  void apply_permutation(std::span<const std::size_t> perm);

  /// Sets every count to `value` (reconstruction re-weights history).
  void set_counts(std::size_t value);

  std::span<const double> centroid(std::size_t c) const {
    return centroids_.row(c);
  }
  std::span<double> centroid_mutable(std::size_t c) {
    return centroids_.row(c);
  }
  const linalg::Matrix& centroids() const { return centroids_; }
  std::size_t count(std::size_t c) const { return counts_[c]; }
  std::span<const std::size_t> counts() const { return counts_; }

  /// Bytes of centroid + counter state.
  std::size_t memory_bytes() const;

 private:
  linalg::Matrix centroids_;
  std::vector<std::size_t> counts_;
};

}  // namespace edgedrift::cluster
