// Row matching between two small centroid sets — used to re-align rebuilt
// label coordinates with the pre-drift label identities after a model
// reconstruction.
#pragma once

#include <cstddef>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::cluster {

/// Returns perm such that candidates.row(perm[i]) is assigned to
/// reference.row(i), minimizing the total squared-L2 assignment cost.
/// Exhaustive (optimal) for up to 8 rows, greedy beyond that.
std::vector<std::size_t> match_rows(const linalg::Matrix& reference,
                                    const linalg::Matrix& candidates);

}  // namespace edgedrift::cluster
