// Batch k-means with k-means++ seeding.
//
// Used in two places: (1) the SPLL baseline detector clusters its reference
// batch with k-means before fitting the semi-parametric Gaussian model;
// (2) the evaluation harness labels initial training data by clustering when
// no ground-truth labels are available (paper Section 3.2: "it is assumed
// that these initial samples can be labeled with a clustering algorithm such
// as k-means").
#pragma once

#include <cstddef>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::cluster {

/// Result of a batch k-means fit.
struct KMeansResult {
  linalg::Matrix centroids;         ///< k x d.
  std::vector<int> assignments;     ///< Per-row cluster index.
  std::vector<std::size_t> counts;  ///< Samples per cluster.
  double inertia = 0.0;             ///< Sum of squared distances to centroids.
  std::size_t iterations = 0;       ///< Lloyd iterations actually run.
  bool converged = false;           ///< True if assignments stabilized.
};

/// Options for a k-means fit.
struct KMeansOptions {
  std::size_t max_iterations = 100;
  double tolerance = 1e-7;  ///< Stop when centroid movement^2 < tolerance.
  bool plus_plus_init = true;
};

/// k-means++ seeding: picks k rows of X, the first uniformly, each next one
/// with probability proportional to squared distance from the chosen set.
linalg::Matrix kmeans_plus_plus_seed(const linalg::Matrix& x, std::size_t k,
                                     util::Rng& rng);

/// Lloyd's algorithm on the rows of X. Empty clusters are re-seeded with the
/// point farthest from its centroid.
KMeansResult kmeans(const linalg::Matrix& x, std::size_t k, util::Rng& rng,
                    const KMeansOptions& options = {});

/// Assigns each row of X to its nearest centroid (squared L2).
std::vector<int> assign_to_nearest(const linalg::Matrix& x,
                                   const linalg::Matrix& centroids);

/// Index of the centroid nearest to a single point.
std::size_t nearest_centroid(std::span<const double> x,
                             const linalg::Matrix& centroids);

}  // namespace edgedrift::cluster
