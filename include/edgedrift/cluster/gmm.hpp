// Diagonal-covariance Gaussian mixture model.
//
// SPLL (Kuncheva, 2013) models the k-means clusters of a reference window as
// a Gaussian mixture and scores test batches by semi-parametric
// log-likelihood. We provide both a one-shot "from clusters" construction
// (what SPLL uses) and a full EM fit (used by tests and the data generators'
// verification suite).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::cluster {

/// Mixture of diagonal Gaussians.
class DiagonalGmm {
 public:
  DiagonalGmm() = default;

  /// Builds component parameters directly from a hard clustering:
  /// per-cluster mean, pooled diagonal variance (shared across components,
  /// as SPLL assumes), and weights proportional to cluster sizes.
  /// `min_variance` floors each variance so log-densities stay finite.
  static DiagonalGmm from_clusters(const linalg::Matrix& x,
                                   std::span<const int> assignments,
                                   std::size_t k,
                                   double min_variance = 1e-6);

  /// Full EM fit with k components, k-means initialization.
  static DiagonalGmm fit_em(const linalg::Matrix& x, std::size_t k,
                            util::Rng& rng, std::size_t max_iterations = 50,
                            double min_variance = 1e-6);

  std::size_t components() const { return means_.rows(); }
  std::size_t dim() const { return means_.cols(); }

  /// log p(x) under the mixture (log-sum-exp over components).
  double log_density(std::span<const double> x) const;

  /// Squared Mahalanobis distance to the *nearest* component — the
  /// semi-parametric statistic SPLL accumulates per sample.
  double min_mahalanobis_sq(std::span<const double> x) const;

  /// Mean log-density over the rows of X.
  double mean_log_density(const linalg::Matrix& x) const;

  std::span<const double> mean(std::size_t c) const { return means_.row(c); }
  std::span<const double> variance(std::size_t c) const {
    return variances_.row(c);
  }
  double weight(std::size_t c) const { return weights_[c]; }

  /// Bytes of parameter storage.
  std::size_t memory_bytes() const;

 private:
  linalg::Matrix means_;      ///< k x d.
  linalg::Matrix variances_;  ///< k x d (diagonal).
  std::vector<double> weights_;
};

}  // namespace edgedrift::cluster
