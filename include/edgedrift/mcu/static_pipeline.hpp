// MCU deployment profile: the complete proposed system (multi-instance
// OS-ELM autoencoders + Algorithm 1 detector + Algorithms 2-4
// reconstruction) in fixed-capacity float32 storage with ZERO heap
// allocations after construction.
//
// This mirrors what the paper actually ran on the Raspberry Pi Pico:
// float32 weights, statically sized buffers, purely sequential updates.
// Because every dimension is a template parameter, the whole memory story
// is a compile-time fact:
//
//   using FanPipeline = mcu::StaticPipeline<511, 22, 1>;
//   static_assert(sizeof(FanPipeline) < 264 * 1024);   // fits the Pico
//
// State is loaded from a fitted core::Pipeline (trained off-device with the
// double-precision library, shipped via io::checkpoint or directly), after
// which the device runs prediction, drift detection and reconstruction with
// no dynamic memory and no double-precision math on the hot path.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::mcu {

/// Per-step outcome, mirroring core::PipelineStep.
struct StaticStep {
  std::size_t label = 0;
  float score = 0.0f;
  bool drift_detected = false;
  bool reconstructing = false;
  bool reconstruction_finished = false;
};

/// Fixed-capacity float32 implementation of the proposed system.
///
/// kDim    — feature dimensionality (e.g. 38 or 511)
/// kHidden — hidden nodes of every OS-ELM instance (paper: 22)
/// kLabels — number of class labels / autoencoder instances
template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
class StaticPipeline {
  static_assert(kHidden < kDim,
                "autoencoders must be undercomplete (hidden < input)");
  static_assert(kLabels >= 1, "need at least one label");

 public:
  StaticPipeline() = default;

  /// Copies a fitted double-precision pipeline's state, narrowing to
  /// float32. The pipeline's dimensions must match the template caps.
  void load(const core::Pipeline& pipeline);

  bool loaded() const { return loaded_; }

  /// Full Algorithm 1 step: prediction, anomaly gate, window update,
  /// drift check, and — when a drift is active — the Algorithm 2 phases.
  StaticStep process(std::span<const float> x);

  /// Label prediction only (lines 6-7).
  std::size_t predict(std::span<const float> x, float& score_out) const;

  /// Anomaly score of one instance.
  float score_of(std::span<const float> x, std::size_t label) const;

  /// One sequential OS-ELM training step on the given instance.
  void train_label(std::span<const float> x, std::size_t label);

  float theta_error() const { return theta_error_; }
  float theta_drift() const { return theta_drift_; }
  bool reconstructing() const { return recon_count_ > 0; }

  /// Compile-time state size (the quantity checked against the 264 kB
  /// Pico budget).
  static constexpr std::size_t state_bytes() {
    return sizeof(StaticPipeline);
  }

 private:
  void hidden_of(std::span<const float> x,
                 std::array<float, kHidden>& h) const;

  /// Anomaly score of one instance from an already-projected hidden vector
  /// (the fused predict() projects once and scores every label from it).
  float score_from_hidden(const std::array<float, kHidden>& h,
                          std::span<const float> x, std::size_t label) const;

  /// OS-ELM step assuming h_scratch_ already holds the projection of x
  /// (valid right after predict()/score_of() on the same sample).
  void train_with_current_hidden(std::span<const float> x, std::size_t label);

  float recent_distance_sum() const;
  std::size_t nearest_coord(std::span<const float> x) const;
  float coord_spread() const;

  // ---- projection (shared by every instance) ----
  std::array<float, kDim * kHidden> alpha_{};
  std::array<float, kHidden> bias_{};

  // ---- per-instance trainable state ----
  std::array<float, kLabels * kHidden * kDim> beta_{};
  std::array<float, kLabels * kHidden * kHidden> p_{};

  // ---- detector state (Algorithm 1) ----
  std::array<float, kLabels * kDim> trained_centroids_{};
  std::array<float, kLabels * kDim> recent_centroids_{};
  std::array<std::uint32_t, kLabels> counts_{};
  float theta_error_ = 0.0f;
  float theta_drift_ = 0.0f;
  std::uint32_t window_size_ = 100;
  std::uint32_t win_ = 0;
  bool check_ = false;

  // ---- reconstruction state (Algorithms 2-4) ----
  std::array<float, kLabels * kDim> coords_{};
  std::array<std::uint32_t, kLabels> coord_counts_{};
  std::uint32_t recon_count_ = 0;  ///< 0 = idle; otherwise Algorithm 2 count.
  std::uint32_t n_search_ = 0;
  std::uint32_t n_update_ = 0;
  std::uint32_t n_total_ = 0;
  // Eq. 1 re-calibration accumulators (Welford in float).
  std::uint32_t dist_count_ = 0;
  float dist_mean_ = 0.0f;
  float dist_m2_ = 0.0f;
  float z_ = 1.0f;
  float p_prior_ = 100.0f;  ///< 1 / reg_lambda, for post-drift P resets.

  // ---- scratch ----
  mutable std::array<float, kHidden> h_scratch_{};
  mutable std::array<float, kDim> recon_scratch_{};
  std::array<float, kHidden> ph_scratch_{};

  bool loaded_ = false;
};

// ===========================================================================
// implementation
// ===========================================================================

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
void StaticPipeline<kDim, kHidden, kLabels>::load(
    const core::Pipeline& pipeline) {
  EDGEDRIFT_ASSERT(pipeline.fitted(), "load() needs a fitted pipeline");
  const auto& config = pipeline.config();
  EDGEDRIFT_ASSERT(config.input_dim == kDim, "input_dim mismatch");
  EDGEDRIFT_ASSERT(config.hidden_dim == kHidden, "hidden_dim mismatch");
  EDGEDRIFT_ASSERT(config.num_labels == kLabels, "num_labels mismatch");

  const auto& projection = *pipeline.model().projection();
  for (std::size_t d = 0; d < kDim; ++d) {
    for (std::size_t h = 0; h < kHidden; ++h) {
      alpha_[d * kHidden + h] =
          static_cast<float>(projection.alpha()(d, h));
    }
  }
  for (std::size_t h = 0; h < kHidden; ++h) {
    bias_[h] = static_cast<float>(projection.bias()[h]);
  }

  for (std::size_t c = 0; c < kLabels; ++c) {
    const auto& net = pipeline.model().instance(c).net();
    for (std::size_t h = 0; h < kHidden; ++h) {
      for (std::size_t d = 0; d < kDim; ++d) {
        beta_[(c * kHidden + h) * kDim + d] =
            static_cast<float>(net.beta()(h, d));
      }
      for (std::size_t h2 = 0; h2 < kHidden; ++h2) {
        p_[(c * kHidden + h) * kHidden + h2] =
            static_cast<float>(net.p()(h, h2));
      }
    }
  }

  const drift::CentroidDetector* centroid = pipeline.centroid_detector();
  EDGEDRIFT_ASSERT(centroid != nullptr,
                   "StaticPipeline mirrors the centroid detector");
  const auto& detector = *centroid;
  for (std::size_t c = 0; c < kLabels; ++c) {
    for (std::size_t d = 0; d < kDim; ++d) {
      trained_centroids_[c * kDim + d] =
          static_cast<float>(detector.trained_centroids()(c, d));
      recent_centroids_[c * kDim + d] =
          static_cast<float>(detector.recent_centroids()(c, d));
    }
    counts_[c] = static_cast<std::uint32_t>(detector.counts()[c]);
  }
  theta_error_ = static_cast<float>(pipeline.theta_error());
  theta_drift_ = static_cast<float>(detector.theta_drift());
  window_size_ = static_cast<std::uint32_t>(config.window_size);
  z_ = static_cast<float>(config.z);
  n_search_ = static_cast<std::uint32_t>(config.reconstruction.n_search);
  n_update_ = static_cast<std::uint32_t>(config.reconstruction.n_update);
  n_total_ = static_cast<std::uint32_t>(config.reconstruction.n_total);
  p_prior_ = static_cast<float>(1.0 / config.reg_lambda);
  win_ = 0;
  check_ = false;
  recon_count_ = 0;
  loaded_ = true;
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
void StaticPipeline<kDim, kHidden, kLabels>::hidden_of(
    std::span<const float> x, std::array<float, kHidden>& h) const {
  for (std::size_t j = 0; j < kHidden; ++j) h[j] = bias_[j];
  for (std::size_t d = 0; d < kDim; ++d) {
    const float xd = x[d];
    if (xd == 0.0f) continue;
    const float* arow = alpha_.data() + d * kHidden;
    for (std::size_t j = 0; j < kHidden; ++j) h[j] += xd * arow[j];
  }
  for (std::size_t j = 0; j < kHidden; ++j) {
    h[j] = 1.0f / (1.0f + std::exp(-h[j]));  // Sigmoid, as the paper uses.
  }
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
float StaticPipeline<kDim, kHidden, kLabels>::score_from_hidden(
    const std::array<float, kHidden>& h, std::span<const float> x,
    std::size_t label) const {
  const float* beta = beta_.data() + label * kHidden * kDim;
  float acc = 0.0f;
  for (std::size_t d = 0; d < kDim; ++d) recon_scratch_[d] = 0.0f;
  for (std::size_t hi = 0; hi < kHidden; ++hi) {
    const float hv = h[hi];
    const float* brow = beta + hi * kDim;
    for (std::size_t d = 0; d < kDim; ++d) {
      recon_scratch_[d] += hv * brow[d];
    }
  }
  for (std::size_t d = 0; d < kDim; ++d) {
    const float delta = x[d] - recon_scratch_[d];
    acc += delta * delta;
  }
  return acc / static_cast<float>(kDim);
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
float StaticPipeline<kDim, kHidden, kLabels>::score_of(
    std::span<const float> x, std::size_t label) const {
  hidden_of(x, h_scratch_);
  return score_from_hidden(h_scratch_, x, label);
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
std::size_t StaticPipeline<kDim, kHidden, kLabels>::predict(
    std::span<const float> x, float& score_out) const {
  // Fused ensemble scoring: the projection is shared by every instance, so
  // compute it once and score all kLabels instances from it (the per-label
  // path recomputed it kLabels times). h_scratch_ still holds the sample's
  // hidden vector afterwards, which the training path reuses.
  hidden_of(x, h_scratch_);
  std::size_t best = 0;
  float best_score = score_from_hidden(h_scratch_, x, 0);
  for (std::size_t c = 1; c < kLabels; ++c) {
    const float s = score_from_hidden(h_scratch_, x, c);
    if (s < best_score) {
      best_score = s;
      best = c;
    }
  }
  score_out = best_score;
  return best;
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
void StaticPipeline<kDim, kHidden, kLabels>::train_label(
    std::span<const float> x, std::size_t label) {
  hidden_of(x, h_scratch_);
  train_with_current_hidden(x, label);
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
void StaticPipeline<kDim, kHidden, kLabels>::train_with_current_hidden(
    std::span<const float> x, std::size_t label) {
  float* p = p_.data() + label * kHidden * kHidden;
  // ph = P h; hph = h^T P h.
  float hph = 0.0f;
  for (std::size_t i = 0; i < kHidden; ++i) {
    const float* prow = p + i * kHidden;
    float acc = 0.0f;
    for (std::size_t j = 0; j < kHidden; ++j) acc += prow[j] * h_scratch_[j];
    ph_scratch_[i] = acc;
    hph += h_scratch_[i] * acc;
  }
  const float denom = 1.0f + hph;
  // P <- P - ph ph^T / denom.
  const float inv = 1.0f / denom;
  for (std::size_t i = 0; i < kHidden; ++i) {
    const float phi = ph_scratch_[i] * inv;
    float* prow = p + i * kHidden;
    for (std::size_t j = 0; j < kHidden; ++j) {
      prow[j] -= phi * ph_scratch_[j];
    }
  }
  // ph_new = P_new h.
  for (std::size_t i = 0; i < kHidden; ++i) {
    const float* prow = p + i * kHidden;
    float acc = 0.0f;
    for (std::size_t j = 0; j < kHidden; ++j) acc += prow[j] * h_scratch_[j];
    ph_scratch_[i] = acc;
  }
  // beta <- beta + ph_new (x - beta^T h)^T, computed row-wise.
  float* beta = beta_.data() + label * kHidden * kDim;
  for (std::size_t d = 0; d < kDim; ++d) recon_scratch_[d] = x[d];
  for (std::size_t h = 0; h < kHidden; ++h) {
    const float hv = h_scratch_[h];
    const float* brow = beta + h * kDim;
    for (std::size_t d = 0; d < kDim; ++d) {
      recon_scratch_[d] -= hv * brow[d];
    }
  }
  for (std::size_t h = 0; h < kHidden; ++h) {
    const float scale = ph_scratch_[h];
    float* brow = beta + h * kDim;
    for (std::size_t d = 0; d < kDim; ++d) {
      brow[d] += scale * recon_scratch_[d];
    }
  }
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
float StaticPipeline<kDim, kHidden, kLabels>::recent_distance_sum() const {
  float total = 0.0f;
  for (std::size_t i = 0; i < kLabels * kDim; ++i) {
    total += std::fabs(recent_centroids_[i] - trained_centroids_[i]);
  }
  return total;
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
std::size_t StaticPipeline<kDim, kHidden, kLabels>::nearest_coord(
    std::span<const float> x) const {
  std::size_t best = 0;
  float best_d = 0.0f;
  for (std::size_t c = 0; c < kLabels; ++c) {
    const float* coord = coords_.data() + c * kDim;
    float d = 0.0f;
    for (std::size_t j = 0; j < kDim; ++j) {
      const float delta = x[j] - coord[j];
      d += delta * delta;
    }
    if (c == 0 || d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
float StaticPipeline<kDim, kHidden, kLabels>::coord_spread() const {
  float total = 0.0f;
  for (std::size_t a = 0; a < kLabels; ++a) {
    for (std::size_t b = a + 1; b < kLabels; ++b) {
      const float* ca = coords_.data() + a * kDim;
      const float* cb = coords_.data() + b * kDim;
      for (std::size_t j = 0; j < kDim; ++j) {
        total += std::fabs(ca[j] - cb[j]);
      }
    }
  }
  return total;
}

template <std::size_t kDim, std::size_t kHidden, std::size_t kLabels>
StaticStep StaticPipeline<kDim, kHidden, kLabels>::process(
    std::span<const float> x) {
  EDGEDRIFT_ASSERT(loaded_, "process() before load()");
  EDGEDRIFT_ASSERT(x.size() == kDim, "sample dim mismatch");
  StaticStep step;

  // ---- reconstruction in progress (Algorithm 2) ----
  if (recon_count_ > 0) {
    step.reconstructing = true;
    const std::uint32_t count = recon_count_++;
    if (count >= n_total_) {
      // Done. First re-align the rebuilt clusters with the pre-drift label
      // identities: greedily match each old trained centroid to its
      // nearest rebuilt coordinate and permute coordinates plus instance
      // state together. Swaps are element-wise so no block-sized temporary
      // is ever needed (the fan config's beta block alone is ~45k floats).
      std::array<std::size_t, kLabels> perm{};
      {
        std::array<bool, kLabels> used{};
        for (std::size_t label = 0; label < kLabels; ++label) {
          float best = 0.0f;
          std::size_t pick = kLabels;
          for (std::size_t j = 0; j < kLabels; ++j) {
            if (used[j]) continue;
            const float* t = trained_centroids_.data() + label * kDim;
            const float* c = coords_.data() + j * kDim;
            float d = 0.0f;
            for (std::size_t k = 0; k < kDim; ++k) {
              const float delta = t[k] - c[k];
              d += delta * delta;
            }
            if (pick == kLabels || d < best) {
              best = d;
              pick = j;
            }
          }
          used[pick] = true;
          perm[label] = pick;
        }
      }
      // Apply the permutation with in-place transpositions.
      auto swap_blocks = [this](std::size_t a, std::size_t b) {
        for (std::size_t k = 0; k < kDim; ++k) {
          std::swap(coords_[a * kDim + k], coords_[b * kDim + k]);
        }
        std::swap(coord_counts_[a], coord_counts_[b]);
        for (std::size_t k = 0; k < kHidden * kDim; ++k) {
          std::swap(beta_[a * kHidden * kDim + k],
                    beta_[b * kHidden * kDim + k]);
        }
        for (std::size_t k = 0; k < kHidden * kHidden; ++k) {
          std::swap(p_[a * kHidden * kHidden + k],
                    p_[b * kHidden * kHidden + k]);
        }
      };
      for (std::size_t i = 0; i < kLabels; ++i) {
        while (perm[i] != i) {
          swap_blocks(i, perm[i]);
          std::swap(perm[i], perm[perm[i]]);
        }
      }
      // Coords become the new trained centroids, Eq. 1 re-arms.
      for (std::size_t i = 0; i < kLabels * kDim; ++i) {
        trained_centroids_[i] = coords_[i];
        recent_centroids_[i] = coords_[i];
      }
      for (std::size_t c = 0; c < kLabels; ++c) counts_[c] = 0;
      if (dist_count_ > 1) {
        const float variance =
            dist_m2_ / static_cast<float>(dist_count_);
        theta_drift_ =
            dist_mean_ + z_ * std::sqrt(variance > 0.0f ? variance : 0.0f);
      }
      recon_count_ = 0;
      check_ = false;
      win_ = 0;
      step.reconstruction_finished = true;
      step.label = predict(x, step.score);
      return step;
    }
    if (count < n_search_) {
      // Algorithm 3: first kLabels samples seed directly; later ones
      // substitute if they raise the pairwise spread.
      if (count <= kLabels) {
        float* coord = coords_.data() + ((count - 1) % kLabels) * kDim;
        for (std::size_t j = 0; j < kDim; ++j) coord[j] = x[j];
        coord_counts_[(count - 1) % kLabels] = 1;
      } else {
        const float base = coord_spread();
        float best = base;
        int chosen = -1;
        std::array<float, kDim> saved;
        for (std::size_t c = 0; c < kLabels; ++c) {
          float* coord = coords_.data() + c * kDim;
          for (std::size_t j = 0; j < kDim; ++j) {
            saved[j] = coord[j];
            coord[j] = x[j];
          }
          const float candidate = coord_spread();
          for (std::size_t j = 0; j < kDim; ++j) coord[j] = saved[j];
          if (candidate > best) {
            best = candidate;
            chosen = static_cast<int>(c);
          }
        }
        if (chosen >= 0) {
          float* coord = coords_.data() + chosen * kDim;
          for (std::size_t j = 0; j < kDim; ++j) coord[j] = x[j];
          coord_counts_[static_cast<std::size_t>(chosen)] = 1;
        }
      }
    } else if (count < n_update_) {
      // Algorithm 4: sequential k-means refinement.
      const std::size_t c = nearest_coord(x);
      float* coord = coords_.data() + c * kDim;
      const float n = static_cast<float>(coord_counts_[c]);
      const float inv = 1.0f / (n + 1.0f);
      for (std::size_t j = 0; j < kDim; ++j) {
        coord[j] = (coord[j] * n + x[j]) * inv;
      }
      ++coord_counts_[c];
    } else {
      // Algorithm 2 lines 8-12: retrain, by nearest coord for the first
      // half, by model prediction afterwards. Either way the sample is
      // projected exactly once: predict() leaves its hidden vector in
      // h_scratch_ and the training step picks it up from there.
      std::size_t label;
      if (count < n_total_ / 2) {
        label = nearest_coord(x);
        hidden_of(x, h_scratch_);
      } else {
        float ignored;
        label = predict(x, ignored);
      }
      train_with_current_hidden(x, label);
      // Eq. 1 accumulators against the rebuilt coordinates.
      const float* coord = coords_.data() + label * kDim;
      float d = 0.0f;
      for (std::size_t j = 0; j < kDim; ++j) {
        d += std::fabs(x[j] - coord[j]);
      }
      ++dist_count_;
      const float delta = d - dist_mean_;
      dist_mean_ += delta / static_cast<float>(dist_count_);
      dist_m2_ += delta * (d - dist_mean_);
    }
    step.label = predict(x, step.score);
    return step;
  }

  // ---- Algorithm 1 main loop ----
  step.label = predict(x, step.score);
  if (!check_ && step.score >= theta_error_) {
    check_ = true;
    win_ = 0;
  }
  if (check_ && win_ < window_size_) {
    float* recent = recent_centroids_.data() + step.label * kDim;
    const float n = static_cast<float>(counts_[step.label]);
    const float inv = 1.0f / (n + 1.0f);
    for (std::size_t j = 0; j < kDim; ++j) {
      recent[j] = (recent[j] * n + x[j]) * inv;
    }
    ++counts_[step.label];
    ++win_;
    if (win_ == window_size_) {
      if (recent_distance_sum() >= theta_drift_) {
        step.drift_detected = true;
        // Enter reconstruction seeded from the recent centroids.
        for (std::size_t i = 0; i < kLabels * kDim; ++i) {
          coords_[i] = recent_centroids_[i];
        }
        for (std::size_t c = 0; c < kLabels; ++c) coord_counts_[c] = 0;
        // Reset every instance to the sequential prior (beta = 0,
        // P = I / lambda approximated by a large prior).
        for (auto& b : beta_) b = 0.0f;
        for (auto& pv : p_) pv = 0.0f;
        for (std::size_t c = 0; c < kLabels; ++c) {
          float* p = p_.data() + c * kHidden * kHidden;
          for (std::size_t h = 0; h < kHidden; ++h) {
            p[h * kHidden + h] = p_prior_;
          }
        }
        dist_count_ = 0;
        dist_mean_ = 0.0f;
        dist_m2_ = 0.0f;
        recon_count_ = 1;
      }
      check_ = false;
    }
  }
  return step;
}

}  // namespace edgedrift::mcu
