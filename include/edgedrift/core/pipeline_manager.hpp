// core::PipelineManager — the sharded multi-stream serving layer: one
// detect-and-retrain Pipeline per sensor stream, partitioned across N
// independent shards, with an LRU eviction layer that keeps only a bounded
// hot set of streams resident.
//
// An edge gateway rarely watches a single signal; it aggregates N sensors,
// each with its own concept. The manager owns one stream slot per sensor
// and exposes a submit(stream_id, sample) entry point: samples of one
// stream are processed strictly in submission order (a stream is never
// touched by two workers at once), while distinct streams run concurrently.
//
// Sharding: streams are assigned to shards by a stable hash of the id
// (core/shard_router.hpp), fixed for the manager's lifetime. Each shard
// owns a dedicated drain worker (optionally core-pinned), its own ready
// queue, its own LRU list and cold store — in the steady state no two
// shards ever touch the same mutex, queue, or stream slab, so drain
// throughput scales with shards up to the core count. submit() routes to
// the owning shard lock-free (hash + per-stream producer mutex only).
//
// Ingestion is a fixed-capacity SPSC ring per stream: samples are copied
// into a preallocated [capacity x dim] row slab (zero per-sample heap
// allocation on the steady path) and published by a monotonic atomic tail
// counter; the shard worker advances an atomic head. Producers of one
// stream are serialized by a per-stream mutex (so submit() stays safe from
// any thread), but no global lock is taken per sample. A full ring either
// blocks the producer until the worker frees slots or rejects the sample,
// per BackpressurePolicy.
//
// Eviction: with hot_stream_budget > 0, each shard keeps at most that many
// streams resident. After a drain cycle the worker pushes the least-
// recently-active idle streams out: the Pipeline is serialized through the
// io checkpoint layer (format v2, tier recorded) into the shard's
// ColdStore (in-memory, or spilled to cold_spill_dir), and the ring slab
// is released. The next submit() to a cold stream restores it
// transparently before enqueueing. The round trip is bit-identical at
// kExactF64 and drift-decision-equivalent at kFastF32/kQuantI8 — the same
// contract the checkpoint layer already guarantees (tests/test_eviction.cpp).
// seed_cold_from() registers large stream populations (100k+) directly in
// the cold store from one fitted template, so registered-stream count is
// bounded by cold-store bytes, not by resident models.
//
// The worker drains whatever is queued in contiguous bursts of up to
// drain_batch_max rows straight out of the slab through
// Pipeline::process_batch_range() — bit-identical to process() row by row —
// splitting only at the ring-wrap boundary. DrainMode::kSample retains the
// old one-process()-per-sample drain as the in-binary baseline for
// bench_manager_throughput.
//
// Thread-safety contract: submit()/submit_batch() may be called from any
// thread. fit(), stream(), steps(), telemetry() and the per-stream stats
// accessors must not race with in-flight samples for the same stream —
// drain() first. stats() (the obs snapshot) and evict() are safe at any
// time. seed_cold_from() is a setup-phase API: it must not race submits.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/core/serving_shard.hpp"
#include "edgedrift/core/shard_router.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/obs/snapshot.hpp"

namespace edgedrift::core {

/// What submit() does when a stream's ring is full.
enum class BackpressurePolicy {
  kBlock,   ///< Wait until the consumer frees slots.
  kReject,  ///< Drop the sample and count it in telemetry.
};

/// How the consumer drains a stream's ring.
enum class DrainMode {
  kBatch,   ///< Contiguous bursts through Pipeline::process_batch_range().
  kSample,  ///< The pre-ring drain: one process() per sample with the old
            ///< path's per-sample allocation and locking, kept as the
            ///< in-binary baseline for bench_manager_throughput.
};

/// Who runs the consumer.
enum class DispatchMode {
  kShard,   ///< Dedicated per-shard drain workers (optionally core-pinned).
  kManual,  ///< submit() only enqueues; the caller drains via poll()/drain().
};

/// Why a submit was (partially) refused. kOk also covers kReject
/// backpressure drops — those are policy, not errors, and are reported via
/// the return value and telemetry.
enum class SubmitStatus {
  kOk,
  kUnknownStream,      ///< Stream id was never registered.
  kDimensionMismatch,  ///< Sample width != the manager's input_dim.
  kBadLabelSpan,       ///< true_labels neither empty nor one per row.
  kRestoreFailed,      ///< Stream is cold and could not be restored.
};

/// Cross-stream drain-planner knobs (see manager_coalesce.cpp). When a
/// drain cycle covers several ready streams that share a projection group —
/// equal alpha/bias fingerprint, dims, activation and numerics tier, which
/// is every stream seeded from one template via seed_cold_from() — the
/// planner gathers their pending ring bursts into one staging slab, runs a
/// single shared projection GEMM over the mega-batch, and scatters the
/// hidden rows back into each stream's own scoring/detection. Results are
/// bit-identical to per-stream draining at kExactF64 (the projection is
/// row-independent) and decision-equivalent at the approximate tiers.
struct DrainOptions {
  /// Coalesce eligible streams within a drain cycle (kBatch drains only).
  bool coalesce = true;
  /// Largest mega-batch the planner stages for one shared GEMM. Rows
  /// beyond this drain through the normal per-stream path the same cycle.
  std::size_t coalesce_rows = 1024;
  /// Minimum streams that must share a projection group before coalescing
  /// pays for the staging copy; smaller groups fall back per-stream.
  std::size_t coalesce_min_streams = 2;
  /// Extra time a shard worker may wait after waking, letting more ready
  /// streams accumulate into the cycle before planning. 0 (default) means
  /// the planner only ever coalesces rows already published at wake-up —
  /// a lone stream is never delayed waiting for company.
  std::uint64_t coalesce_wait_ns = 0;
  /// Chunked rank-k recovery training for every managed stream
  /// (PipelineConfig::train_chunk): 0 (default) keeps each pipeline's own
  /// setting; a value > 0 overrides it at construction. With chunking on,
  /// recovering streams stay eligible for the coalesced mega-batch drain
  /// instead of being carved out to the per-stream path.
  std::size_t train_chunk = 0;
};

/// Serving-layer knobs, fixed at construction.
struct ManagerOptions {
  std::size_t queue_capacity = 1024;  ///< Ring slots per stream.
  std::size_t drain_batch_max = 128;  ///< Largest rows per drain burst.
  DrainOptions drain_opts;            ///< Cross-stream coalescing knobs.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  DrainMode drain = DrainMode::kBatch;
  DispatchMode dispatch = DispatchMode::kShard;
  /// Independent serving shards (kShard dispatch spawns one worker each).
  std::size_t shards = 1;
  /// Hot streams each shard keeps resident; 0 = unlimited (eviction off).
  std::size_t hot_stream_budget = 0;
  /// Pin each shard worker to one allowed CPU core (Linux; best-effort —
  /// ShardSnapshot::pinned reports the outcome).
  bool pin_cores = false;
  /// When non-empty, evicted streams spill to files in this directory
  /// instead of staying in memory (must exist and be writable).
  std::string cold_spill_dir;
  /// When set, overrides PipelineConfig::numerics for every stream — the
  /// serving-layer knob for trading score precision against stream density
  /// (linalg/numerics.hpp). Unset keeps the per-pipeline setting.
  std::optional<linalg::NumericsTier> numerics;
};

/// Owns N per-stream pipelines partitioned across per-core serving shards.
class PipelineManager {
 public:
  /// Builds `num_streams` resident pipelines from `config`; stream i uses
  /// seed config.seed + i so the streams' random projections are
  /// independent. Larger populations are added cold via seed_cold_from().
  PipelineManager(const PipelineConfig& config, std::size_t num_streams);
  PipelineManager(const PipelineConfig& config, std::size_t num_streams,
                  const ManagerOptions& options);

  /// Drains all in-flight samples, then stops the shard workers.
  ~PipelineManager();

  PipelineManager(const PipelineManager&) = delete;
  PipelineManager& operator=(const PipelineManager&) = delete;

  std::size_t num_streams() const { return streams_.size(); }
  const ManagerOptions& options() const { return options_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// The shard owning stream `id` (stable hash, core/shard_router.hpp).
  std::size_t shard_of(std::size_t id) const {
    return shard_of_stream(static_cast<std::uint64_t>(id), shards_.size());
  }

  /// The per-stream pipeline. Not safe while samples for this stream are
  /// in flight, and the stream must be resident — drain() first, check
  /// resident(id) under eviction.
  Pipeline& stream(std::size_t id);
  const Pipeline& stream(std::size_t id) const;

  /// Convenience: initial training of one stream's pipeline.
  void fit(std::size_t id, const linalg::Matrix& x,
           std::span<const int> labels);

  /// Enqueues one sample (copied into the stream's ring slab) and returns
  /// true. A cold stream is restored first (transparently; the sample then
  /// proceeds as usual). On a full ring: kBlock waits for space (in kManual
  /// dispatch the submitting thread drains the stream inline instead of
  /// deadlocking); kReject returns false and counts the drop. Processing
  /// happens on the owning shard's worker in submission order per stream
  /// (kShard) or when the caller polls (kManual). On failure `status`
  /// (when non-null) receives the typed reason; an unknown id or a failed
  /// restore returns false instead of asserting.
  bool submit(std::size_t id, std::span<const double> x, int true_label = -1,
              SubmitStatus* status = nullptr);

  /// Enqueues every row of a block under one ring reservation (one producer
  /// lock, one tail publish per contiguous segment, one scheduling check).
  /// `true_labels` must be empty or hold exactly one label per row — a
  /// partial span enqueues nothing and reports kBadLabelSpan; it is never
  /// read out of bounds. Returns the number of rows accepted (< x.rows()
  /// under kReject backpressure or on a typed error, see `status`).
  std::size_t submit_batch(std::size_t id, const linalg::Matrix& x,
                           std::span<const int> true_labels = {},
                           SubmitStatus* status = nullptr);

  /// Drains the given stream on the calling thread until its ring is empty.
  /// The kManual dispatch consumer; in kShard mode it is also safe — racing
  /// the shard worker for bursts is prevented by the scheduled flag.
  void poll(std::size_t id);

  /// Blocks until every submitted sample has been processed. In kManual
  /// dispatch, drains every stream on the calling thread.
  void drain();

  /// Evicts stream `id` now if it is resident and idle (empty ring, no
  /// drain in flight, fitted, not recovering): serializes its state into
  /// the shard's cold store and releases the pipeline + ring. Returns
  /// false when the stream is busy or not evictable. Safe from any thread;
  /// eviction also happens automatically under hot_stream_budget.
  bool evict(std::size_t id);

  /// True when the stream currently holds a resident Pipeline.
  bool resident(std::size_t id) const;

  /// Registers `count` new streams cold: stream `source_id` (fitted,
  /// resident) is serialized once and every new id maps to that shared
  /// template blob in its shard's cold store — the 100k-stream
  /// registration path, costing one checkpoint and one blob regardless of
  /// count. New ids are num_streams()..num_streams()+count-1; returns the
  /// first new id. Each seeded stream becomes an independent pipeline on
  /// first submit (restored from the template, then diverging with its own
  /// samples). Setup-phase API: must not race submits.
  std::size_t seed_cold_from(std::size_t source_id, std::size_t count);

  /// Resident / evicted stream totals across shards.
  std::size_t hot_streams() const;
  std::size_t cold_streams() const;

  /// Steps produced so far for a stream, in submission order; clears the
  /// stored steps. Call after drain() for a complete, race-free view.
  std::vector<PipelineStep> take_steps(std::size_t id);

  /// Appends the steps into `out` (keeping out's capacity) and clears the
  /// stored steps — the allocation-free twin of take_steps() once `out`
  /// has reached its high-water capacity.
  void take_steps(std::size_t id, std::vector<PipelineStep>& out);

  /// One stream's serving counters. drain() first.
  const StreamTelemetry& telemetry(std::size_t id) const;

  /// One stream's pipeline counters (samples, drifts, ...), summed across
  /// its evict/restore cycles. drain() first.
  const PipelineStats& stats(std::size_t id) const;

  /// Counters summed across all streams (hot and cold). drain() first.
  PipelineStats totals() const;

  /// Observability snapshot: every stream (carried history + live block
  /// for resident streams) plus one ShardSnapshot per shard. Safe to call
  /// at any time from any thread — per-shard consistency is provided by
  /// briefly holding each shard's evict mutex while its streams are read,
  /// so a snapshot never observes a half-evicted stream.
  obs::Snapshot stats() const;

 private:
  using Stream = detail::ManagedStream;
  using Shard = detail::ShardState;

  void init_streams(const PipelineConfig& config, std::size_t num_streams);
  void start_workers();
  /// Hands the stream to its shard worker if no drain cycle owns it.
  void maybe_schedule(Stream& s);
  /// Worker body for one shard: take-all / drain / park loop.
  void shard_worker(Shard& shard);
  /// Best-effort core pinning for a shard worker (Linux).
  void pin_worker(Shard& shard);
  /// Drains one stream with scheduled-flag handoff, then runs the
  /// eviction bookkeeping (LRU touch + budget enforcement).
  void run_stream(Stream& s);
  /// The drain planner (manager_coalesce.cpp): partitions the streams in
  /// shard.plan_candidates by projection fingerprint and runs one shared
  /// mega-batch GEMM per group, scattering hidden rows into each member's
  /// scoring. The caller owns every candidate's scheduled flag; leftover
  /// rows (caps, recovery handoff) drain per-stream afterwards.
  void coalesce_candidates(Shard& shard);
  /// One group's stage-GEMM-scatter step over shard.plan.
  void coalesce_group(Shard& shard);
  /// True when the planner may put `s` into a shared mega-batch.
  bool coalesce_eligible(const Stream& s) const;
  /// Processes everything currently published. Returns rows processed.
  std::size_t drain_burst(Stream& s);
  /// LRU touch + enforce_budget after a drain cycle.
  void after_drain(Stream& s);
  /// Evicts LRU-idle streams until the shard is within budget. Caller
  /// holds shard.evict_mutex. `skip` (may be null) is never victimized —
  /// the stream whose restore triggered this enforcement, whose
  /// produce_mutex the calling thread already holds.
  void enforce_budget_locked(Shard& shard, const Stream* skip = nullptr);
  /// Serializes + releases one stream. Caller holds shard.evict_mutex and
  /// s.produce_mutex, and s must be eligible (idle, fitted, hot).
  bool evict_locked(Shard& shard, Stream& s);
  /// True when `s` may be evicted right now. Caller holds both mutexes.
  bool evictable_locked(const Stream& s) const;
  /// Rebuilds a cold stream from its blob. Caller holds s.produce_mutex;
  /// takes shard.evict_mutex itself. False -> kRestoreFailed.
  bool restore_cold(Shard& shard, Stream& s);
  /// Model + ring bytes of a resident stream (the hot-budget unit).
  std::size_t hot_footprint(const Stream& s) const;
  /// Wakes kBlock producers after head advanced past `head_before`.
  void notify_space(Stream& s);
  /// Wakes drain() waiters when pending and active both reached zero.
  void notify_done();

  ManagerOptions options_;
  /// Stream-template config (numerics override applied): seeds restored
  /// pipelines' runtime-only fields (detector spec, recovery, obs,
  /// max_batch_rows) and fixes input_dim for dimension checks.
  PipelineConfig template_config_;
  bool obs_on_ = false;  ///< Cached obs gate: kObsCompiled && obs.enabled.
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Submitted-not-yet-processed samples (incremented before tail publish,
  /// decremented once per drained burst) and queued/running drain cycles.
  /// No lock is held to update these; done_mutex_ only anchors the
  /// done_cv_ wait in drain().
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> active_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

}  // namespace edgedrift::core
