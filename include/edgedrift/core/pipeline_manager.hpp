// core::PipelineManager — the multi-stream layer: one detect-and-retrain
// Pipeline per sensor stream, fanned out over the shared thread pool.
//
// An edge gateway rarely watches a single signal; it aggregates N sensors,
// each with its own concept. The manager owns one Pipeline per stream and
// exposes a submit(stream_id, sample) entry point: samples of one stream
// are processed strictly in submission order (a stream is never touched by
// two workers at once), while distinct streams run concurrently. Each
// stream keeps its own drift/recovery statistics and the per-sample steps
// in submission order.
//
// Thread-safety contract: submit() may be called from any thread. fit(),
// stream(), steps() and the stats accessors must not race with in-flight
// samples for the same stream — call drain() first.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/util/thread_pool.hpp"

namespace edgedrift::core {

/// Owns N per-stream pipelines and schedules their samples over a pool.
class PipelineManager {
 public:
  /// Builds `num_streams` pipelines from `config`; stream i uses seed
  /// config.seed + i so the streams' random projections are independent.
  /// `pool` defaults to the process-wide pool; it must outlive the manager.
  PipelineManager(const PipelineConfig& config, std::size_t num_streams,
                  util::ThreadPool* pool = nullptr);

  /// Drains all in-flight samples before destruction.
  ~PipelineManager();

  PipelineManager(const PipelineManager&) = delete;
  PipelineManager& operator=(const PipelineManager&) = delete;

  std::size_t num_streams() const { return streams_.size(); }

  /// The per-stream pipeline. Not safe while samples for this stream are
  /// in flight — drain() first.
  Pipeline& stream(std::size_t id);
  const Pipeline& stream(std::size_t id) const;

  /// Convenience: initial training of one stream's pipeline.
  void fit(std::size_t id, const linalg::Matrix& x,
           std::span<const int> labels);

  /// Enqueues one sample (copied) for the stream. Returns immediately;
  /// processing happens on the pool, in submission order per stream.
  void submit(std::size_t id, std::span<const double> x, int true_label = -1);

  /// Enqueues every row of a block for the stream.
  void submit_batch(std::size_t id, const linalg::Matrix& x,
                    std::span<const int> true_labels = {});

  /// Blocks until every submitted sample has been processed.
  void drain();

  /// Steps produced so far for a stream, in submission order; clears the
  /// stored steps. Call after drain() for a complete, race-free view.
  std::vector<PipelineStep> take_steps(std::size_t id);

  /// One stream's counters (samples, drifts, recoveries). drain() first.
  const PipelineStats& stats(std::size_t id) const;

  /// Counters summed across all streams. drain() first.
  PipelineStats totals() const;

 private:
  struct QueuedSample {
    std::vector<double> x;
    int true_label = -1;
  };

  /// Per-stream state. The mutex guards queue/steps/scheduled; the pipeline
  /// itself is only ever touched by the single worker draining the stream.
  struct Stream {
    std::unique_ptr<Pipeline> pipeline;
    std::mutex mutex;
    std::deque<QueuedSample> queue;
    std::vector<PipelineStep> steps;
    bool scheduled = false;  ///< A drain task is queued or running.
  };

  void run_stream(std::size_t id);

  util::ThreadPool* pool_;
  std::vector<std::unique_ptr<Stream>> streams_;

  std::mutex done_mutex_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;  ///< Submitted, not yet processed samples.
  std::size_t active_ = 0;   ///< Drain tasks queued or running.
};

}  // namespace edgedrift::core
