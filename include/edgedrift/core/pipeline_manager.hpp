// core::PipelineManager — the multi-stream serving layer: one
// detect-and-retrain Pipeline per sensor stream, fanned out over the shared
// thread pool.
//
// An edge gateway rarely watches a single signal; it aggregates N sensors,
// each with its own concept. The manager owns one Pipeline per stream and
// exposes a submit(stream_id, sample) entry point: samples of one stream
// are processed strictly in submission order (a stream is never touched by
// two workers at once), while distinct streams run concurrently.
//
// Ingestion is a fixed-capacity SPSC ring per stream: samples are copied
// into a preallocated [capacity x dim] row slab (zero per-sample heap
// allocation on the steady path) and published by a monotonic atomic tail
// counter; the single consumer advances an atomic head. Producers of one
// stream are serialized by a per-stream mutex (so submit() stays safe from
// any thread), but no global lock is taken per sample — the drain
// bookkeeping is one atomic pending counter, decremented once per drained
// burst. A full ring either blocks the producer until the consumer frees
// slots or rejects the sample, per BackpressurePolicy.
//
// The consumer drains whatever is queued in contiguous bursts of up to
// drain_batch_max rows straight out of the slab through
// Pipeline::process_batch_range() — bit-identical to process() row by row —
// splitting only at the ring-wrap boundary. DrainMode::kSample retains the
// old one-process()-per-sample drain — per-sample heap copy, queue-mutex
// pop, and done-counter locking — as the in-binary baseline for
// bench_manager_throughput.
//
// Thread-safety contract: submit()/submit_batch() may be called from any
// thread. fit(), stream(), steps(), telemetry() and the stats accessors
// must not race with in-flight samples for the same stream — drain() first.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/obs/snapshot.hpp"
#include "edgedrift/util/thread_pool.hpp"

namespace edgedrift::core {

/// What submit() does when a stream's ring is full.
enum class BackpressurePolicy {
  kBlock,   ///< Wait until the consumer frees slots.
  kReject,  ///< Drop the sample and count it in telemetry.
};

/// How the consumer drains a stream's ring.
enum class DrainMode {
  kBatch,   ///< Contiguous bursts through Pipeline::process_batch_range().
  kSample,  ///< The pre-ring drain: one process() per sample with the old
            ///< path's per-sample allocation and locking, kept as the
            ///< in-binary baseline for bench_manager_throughput.
};

/// Who runs the consumer.
enum class DispatchMode {
  kPool,    ///< submit() schedules drain tasks on the thread pool.
  kManual,  ///< submit() only enqueues; the caller drains via poll()/drain().
};

/// Serving-layer knobs, fixed at construction.
struct ManagerOptions {
  std::size_t queue_capacity = 1024;  ///< Ring slots per stream.
  std::size_t drain_batch_max = 128;  ///< Largest rows per drain burst.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  DrainMode drain = DrainMode::kBatch;
  DispatchMode dispatch = DispatchMode::kPool;
  /// When set, overrides PipelineConfig::numerics for every stream — the
  /// serving-layer knob for trading score precision against stream density
  /// (linalg/numerics.hpp). Unset keeps the per-pipeline setting.
  std::optional<linalg::NumericsTier> numerics;
};

/// Per-stream serving counters. Written by the consumer (and, for
/// submitted/rejected/blocked, by producers under the stream's produce
/// mutex); except for the atomic high-water mark, read them only after
/// drain() — the drain-first contract above.
struct StreamTelemetry {
  std::size_t submitted = 0;   ///< Samples accepted into the ring.
  std::size_t rejected = 0;    ///< Samples dropped by kReject backpressure.
  std::size_t blocked = 0;     ///< submit() calls that had to wait (kBlock).
  std::size_t processed = 0;   ///< Samples drained through the pipeline.
  std::size_t drain_bursts = 0;         ///< Contiguous drain segments run.
  /// Max queued depth ever observed. Atomic (relaxed CAS-max) because both
  /// the producer (after a tail publish) and the drain task (per burst)
  /// raise it concurrently; every other counter is single-writer.
  std::atomic<std::size_t> queue_high_water{0};
  std::uint64_t busy_ns = 0;   ///< Wall time spent inside drain bursts.
  /// drain_burst_hist[b] counts bursts of size in [2^(b-1)+1, 2^b]
  /// (bucket 0 = single-sample bursts): the drain-batch-size histogram.
  std::array<std::size_t, 17> drain_burst_hist{};

  /// Processed samples per second of busy drain time.
  double samples_per_second() const {
    return busy_ns == 0
               ? 0.0
               : static_cast<double>(processed) * 1e9 /
                     static_cast<double>(busy_ns);
  }
};

/// Owns N per-stream pipelines and schedules their samples over a pool.
class PipelineManager {
 public:
  /// Builds `num_streams` pipelines from `config`; stream i uses seed
  /// config.seed + i so the streams' random projections are independent.
  /// `pool` defaults to the process-wide pool; it must outlive the manager.
  PipelineManager(const PipelineConfig& config, std::size_t num_streams,
                  util::ThreadPool* pool = nullptr);
  PipelineManager(const PipelineConfig& config, std::size_t num_streams,
                  const ManagerOptions& options,
                  util::ThreadPool* pool = nullptr);

  /// Drains all in-flight samples before destruction.
  ~PipelineManager();

  PipelineManager(const PipelineManager&) = delete;
  PipelineManager& operator=(const PipelineManager&) = delete;

  std::size_t num_streams() const { return streams_.size(); }
  const ManagerOptions& options() const { return options_; }

  /// The per-stream pipeline. Not safe while samples for this stream are
  /// in flight — drain() first.
  Pipeline& stream(std::size_t id);
  const Pipeline& stream(std::size_t id) const;

  /// Convenience: initial training of one stream's pipeline.
  void fit(std::size_t id, const linalg::Matrix& x,
           std::span<const int> labels);

  /// Enqueues one sample (copied into the stream's ring slab) and returns
  /// true. On a full ring: kBlock waits for space (in kManual dispatch the
  /// submitting thread drains the stream inline instead of deadlocking);
  /// kReject returns false and counts the drop. Processing happens on the
  /// pool in submission order per stream (kPool) or when the caller polls
  /// (kManual).
  bool submit(std::size_t id, std::span<const double> x, int true_label = -1);

  /// Enqueues every row of a block under one ring reservation (one producer
  /// lock, one tail publish per contiguous segment, one scheduling check).
  /// `true_labels` must be empty or hold exactly one label per row —
  /// anything else fails the assertion loudly; a partial span is never read
  /// out of bounds. Returns the number of rows accepted (< x.rows() only
  /// under kReject backpressure).
  std::size_t submit_batch(std::size_t id, const linalg::Matrix& x,
                           std::span<const int> true_labels = {});

  /// Drains the given stream on the calling thread until its ring is empty.
  /// The kManual dispatch consumer; in kPool mode it is also safe, racing
  /// pool workers for bursts is prevented by the scheduled flag.
  void poll(std::size_t id);

  /// Blocks until every submitted sample has been processed. In kManual
  /// dispatch, drains every stream on the calling thread.
  void drain();

  /// Steps produced so far for a stream, in submission order; clears the
  /// stored steps. Call after drain() for a complete, race-free view.
  std::vector<PipelineStep> take_steps(std::size_t id);

  /// Appends the steps into `out` (keeping out's capacity) and clears the
  /// stored steps — the allocation-free twin of take_steps() once `out`
  /// has reached its high-water capacity.
  void take_steps(std::size_t id, std::vector<PipelineStep>& out);

  /// One stream's serving counters. drain() first.
  const StreamTelemetry& telemetry(std::size_t id) const;

  /// One stream's pipeline counters (samples, drifts, ...). drain() first.
  const PipelineStats& stats(std::size_t id) const;

  /// Counters summed across all streams. drain() first.
  PipelineStats totals() const;

  /// Observability snapshot across every stream. Unlike the accessors
  /// above, this is safe to call at any time from any thread — the obs
  /// layer is lock-free and snapshots are torn-read-safe — so a monitoring
  /// thread can poll it while producers and drain tasks are live.
  obs::Snapshot stats() const;

 private:
  /// Per-stream state. Producers serialize on produce_mutex and publish
  /// rows via tail; the single consumer owns head, the pipeline, steps and
  /// telemetry. Consumer handoff between pool tasks goes through the
  /// seq_cst scheduled flag, which orders each burst's plain-field writes
  /// before the next burst reads them.
  struct Stream {
    std::unique_ptr<Pipeline> pipeline;

    linalg::Matrix slab;      ///< [capacity x dim] ring row storage.
    std::vector<int> labels;  ///< [capacity] ring label storage.
    /// [capacity] enqueue timestamps feeding the submit->drain histogram;
    /// written under the same slot ownership rules as slab rows. Empty
    /// when the obs layer is off.
    std::vector<std::uint64_t> submit_ns;

    /// Monotonic sample counters; slot = counter % capacity. tail is
    /// published by producers after the row copy, head by the consumer
    /// after the row is processed (freeing the slot for reuse).
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> tail{0};

    std::atomic<bool> scheduled{false};  ///< A drain task is queued/running.

    std::mutex produce_mutex;  ///< Serializes producers; kBlock cv anchor.
    std::condition_variable space_cv;
    std::atomic<std::size_t> space_waiters{0};

    std::mutex steps_mutex;
    std::vector<PipelineStep> steps;

    StreamTelemetry telemetry;
  };

  void init_streams(const PipelineConfig& config, std::size_t num_streams);
  /// Schedules a drain task if none is queued/running (kPool dispatch).
  void maybe_schedule(Stream& s, std::size_t id);
  /// Pool-task consumer: drains until empty, with scheduled-flag handoff.
  void run_stream(std::size_t id);
  /// Processes everything currently published. Returns rows processed.
  std::size_t drain_burst(Stream& s);
  /// Wakes kBlock producers after head advanced past `head_before`.
  void notify_space(Stream& s);
  /// Wakes drain() waiters when pending and active both reached zero.
  void notify_done();

  util::ThreadPool* pool_;
  ManagerOptions options_;
  bool obs_on_ = false;  ///< Cached obs gate: kObsCompiled && obs.enabled.
  std::vector<std::unique_ptr<Stream>> streams_;

  /// Submitted-not-yet-processed samples (incremented before tail publish,
  /// decremented once per drained burst) and queued/running drain tasks.
  /// No lock is held to update these; done_mutex_ only anchors the
  /// done_cv_ wait in drain().
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> active_{0};
  std::mutex done_mutex_;
  std::condition_variable done_cv_;
};

}  // namespace edgedrift::core
