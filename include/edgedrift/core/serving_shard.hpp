// core::detail — the per-stream and per-shard state behind PipelineManager.
//
// The sharded serving layer (see core/pipeline_manager.hpp) is built from
// three pieces defined here:
//
//   ManagedStream — one stream's full serving state: the SPSC ring (slab +
//     monotonic head/tail), the Pipeline while the stream is hot, the
//     intrusive hooks linking it into its shard's ready stack and LRU list,
//     and the counters carried across evict/restore cycles.
//   ReadyStack — a Treiber stack of streams with published-but-undrained
//     rows. Producers push after winning a stream's scheduled flag; the
//     shard's single worker takes the whole stack at once. The scheduled
//     flag guarantees a stream is pushed at most once per drain cycle, so
//     the classic ABA hazard (pop racing a reinsertion) cannot arise —
//     nobody pops single nodes.
//   ShardState — everything one shard owns: the ready stack, the worker
//     thread and its park/wake latch, the LRU list + hot/cold gauges under
//     the shard's evict mutex, the cold store, and the shard obs block.
//
// StreamTelemetry also lives here (re-exported through pipeline_manager.hpp,
// which is the intended include) because ManagedStream embeds it.
//
// Lock order (deadlock discipline): a producer holds its own stream's
// produce_mutex, then may take the shard's evict_mutex (restore/admission),
// then try_lock another stream's produce_mutex (budget enforcement). The
// eviction side always acquires victims with try_lock, so the produce ->
// evict edge never forms a cycle with evict -> produce.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "edgedrift/core/cold_store.hpp"
#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/obs/shard_obs.hpp"
#include "edgedrift/obs/snapshot.hpp"

namespace edgedrift::core {

/// Per-stream serving counters. Written by the consumer (and, for
/// submitted/rejected/blocked, by producers under the stream's produce
/// mutex); except for the atomic high-water mark, read them only after
/// drain() — the drain-first contract.
struct StreamTelemetry {
  std::size_t submitted = 0;   ///< Samples accepted into the ring.
  std::size_t rejected = 0;    ///< Samples dropped by kReject backpressure.
  std::size_t blocked = 0;     ///< submit() calls that had to wait (kBlock).
  std::size_t processed = 0;   ///< Samples drained through the pipeline.
  std::size_t drain_bursts = 0;         ///< Contiguous drain segments run.
  /// Max queued depth ever observed. Atomic (relaxed CAS-max) because both
  /// the producer (after a tail publish) and the drain task (per burst)
  /// raise it concurrently; every other counter is single-writer.
  std::atomic<std::size_t> queue_high_water{0};
  std::uint64_t busy_ns = 0;   ///< Wall time spent inside drain bursts.
  /// drain_burst_hist[b] counts bursts of size in [2^(b-1)+1, 2^b]
  /// (bucket 0 = single-sample bursts): the drain-batch-size histogram.
  std::array<std::size_t, 17> drain_burst_hist{};

  /// Processed samples per second of busy drain time.
  double samples_per_second() const {
    return busy_ns == 0
               ? 0.0
               : static_cast<double>(processed) * 1e9 /
                     static_cast<double>(busy_ns);
  }
};

namespace detail {

/// Histogram bucket for a drain burst of `n` rows: bucket 0 holds
/// single-sample bursts, bucket b holds sizes (2^(b-1), 2^b].
inline std::size_t burst_bucket(std::size_t n) {
  const std::size_t b = n <= 1 ? 0 : std::bit_width(n - 1);
  return std::min<std::size_t>(b, 16);
}

/// Relaxed CAS-max: producers and the drain task raise the high-water mark
/// concurrently; losing a race to a larger value is the desired outcome.
inline void raise_high_water(std::atomic<std::size_t>& hw,
                             std::size_t depth) {
  std::size_t cur = hw.load(std::memory_order_relaxed);
  while (depth > cur &&
         !hw.compare_exchange_weak(cur, depth, std::memory_order_relaxed)) {
  }
}

/// Per-stream serving state. Producers serialize on produce_mutex and
/// publish rows via tail; the shard's single worker owns head, the
/// pipeline, steps and telemetry. Consumer handoff between drain cycles
/// goes through the seq_cst scheduled flag, which orders each burst's
/// plain-field writes before the next burst reads them.
///
/// Residency: a kHot stream owns its pipeline, ring slab and label/stamp
/// arrays; a kCold stream has released all of them — its state is a
/// checkpoint blob in the shard's ColdStore — and keeps only the cheap
/// fields (telemetry, steps, carried counters). Residency writes hold BOTH
/// the stream's produce_mutex and the shard's evict_mutex, so holding
/// either is enough to read it.
struct ManagedStream {
  enum class Residency : std::uint8_t { kHot, kCold };

  std::size_t id = 0;     ///< Manager-wide stream id.
  std::size_t shard = 0;  ///< Owning shard (stable: shard_of_stream(id)).

  // ---- hot-only state (released on eviction, rebuilt on restore) ----
  std::unique_ptr<Pipeline> pipeline;
  linalg::Matrix slab;      ///< [capacity x dim] ring row storage.
  std::vector<int> labels;  ///< [capacity] ring label storage.
  /// [capacity] enqueue timestamps feeding the submit->drain histogram;
  /// written under the same slot ownership rules as slab rows. Empty
  /// when the obs layer is off.
  std::vector<std::uint64_t> submit_ns;

  /// Monotonic sample counters; slot = counter % capacity. tail is
  /// published by producers after the row copy, head by the consumer
  /// after the row is processed (freeing the slot for reuse). They keep
  /// counting across evict/restore cycles (eviction requires an empty
  /// ring, so head == tail whenever the slab is released).
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};

  std::atomic<bool> scheduled{false};  ///< A drain cycle is queued/running.

  std::mutex produce_mutex;  ///< Serializes producers; kBlock cv anchor.
  std::condition_variable space_cv;
  std::atomic<std::size_t> space_waiters{0};

  std::mutex steps_mutex;
  std::vector<PipelineStep> steps;

  StreamTelemetry telemetry;

  // ---- residency / eviction bookkeeping (guarded by shard evict_mutex
  //      unless noted) ----
  Residency residency = Residency::kHot;  ///< See class comment for locking.
  std::size_t hot_footprint_bytes = 0;    ///< Model + ring bytes while hot.

  /// Treiber-stack link; owned by the ready stack between push and take.
  std::atomic<ManagedStream*> ready_next{nullptr};
  /// LRU hooks (MRU at the list head). in_lru makes erase idempotent.
  ManagedStream* lru_prev = nullptr;
  ManagedStream* lru_next = nullptr;
  bool in_lru = false;

  /// Observability and pipeline counters accumulated over every previous
  /// hot period, merged in at eviction time (the live pipeline's books are
  /// destroyed with it). Null until the first eviction, so the 100k
  /// cold-seeded streams pay nothing for it.
  std::unique_ptr<obs::StreamSnapshot> carried_obs;
  PipelineStats carried_stats;
  /// Scratch for stats(id)'s return-by-reference contract: filled with
  /// carried + live counters on each call. mutable-by-convention (stats()
  /// is const); drain-first contract applies.
  PipelineStats stats_view;
};

/// Lock-free multi-producer stack of streams awaiting a drain cycle.
/// push() is called by producers (at most once per stream per cycle — the
/// scheduled flag gates it); take_all() by the shard's single worker.
class ReadyStack {
 public:
  void push(ManagedStream* s) {
    ManagedStream* head = head_.load();
    do {
      s->ready_next.store(head, std::memory_order_relaxed);
    } while (!head_.compare_exchange_weak(head, s));
  }

  /// Detaches and returns the whole stack (LIFO chain via ready_next),
  /// or nullptr when empty.
  ManagedStream* take_all() { return head_.exchange(nullptr); }

  bool empty() const { return head_.load() == nullptr; }

 private:
  std::atomic<ManagedStream*> head_{nullptr};
};

/// Intrusive LRU list over ManagedStream (head = MRU, tail = LRU).
/// Externally guarded by the owning shard's evict_mutex.
class LruList {
 public:
  void push_mru(ManagedStream* s) {
    s->lru_prev = nullptr;
    s->lru_next = head_;
    if (head_ != nullptr) head_->lru_prev = s;
    head_ = s;
    if (tail_ == nullptr) tail_ = s;
    s->in_lru = true;
    ++size_;
  }

  void erase(ManagedStream* s) {
    if (!s->in_lru) return;
    if (s->lru_prev != nullptr) s->lru_prev->lru_next = s->lru_next;
    if (s->lru_next != nullptr) s->lru_next->lru_prev = s->lru_prev;
    if (head_ == s) head_ = s->lru_next;
    if (tail_ == s) tail_ = s->lru_prev;
    s->lru_prev = s->lru_next = nullptr;
    s->in_lru = false;
    --size_;
  }

  void touch(ManagedStream* s) {
    erase(s);
    push_mru(s);
  }

  ManagedStream* lru() const { return tail_; }
  std::size_t size() const { return size_; }

 private:
  ManagedStream* head_ = nullptr;
  ManagedStream* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// Everything one serving shard owns. No field here is ever touched by
/// another shard's worker; producers touch only the ready stack, the
/// park/wake latch, and (under evict_mutex) the LRU + cold store.
struct ShardState {
  std::size_t index = 0;

  ReadyStack ready;

  // Worker park/wake latch. The worker sets parked before rechecking the
  // ready stack; producers push, then check parked — under the seq_cst
  // total order one of the two always observes the other, so no wakeup is
  // lost (see manager_shard.cpp).
  std::thread worker;
  std::mutex wake_mutex;
  std::condition_variable wake_cv;
  std::atomic<bool> parked{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> pinned{false};  ///< Worker successfully core-pinned.

  // Eviction state: LRU order, hot/cold gauges, and every stream's
  // residency transition for this shard happen under evict_mutex.
  std::mutex evict_mutex;
  LruList lru;
  std::size_t hot_streams = 0;
  std::size_t cold_streams = 0;
  std::size_t hot_bytes = 0;  ///< Sum of hot streams' footprints.

  ColdStore cold;
  obs::ShardObs obs;

  // ---- coalesced-drain staging (core/manager_coalesce.cpp) ----
  // Touched only by the thread currently acting as this shard's consumer:
  // the shard worker in kShard dispatch, or the single caller running
  // drain() in kManual dispatch. Grow-only scratch, so the steady state is
  // allocation-free once the high-water group size has been seen.
  struct GroupMember {
    ManagedStream* stream = nullptr;
    std::uint64_t head = 0;    ///< Ring head at planning time.
    std::size_t take = 0;      ///< Rows packed from this stream.
    std::size_t offset = 0;    ///< First staging row of this stream's block.
    std::size_t queued = 0;    ///< Ring depth at planning time (telemetry).
  };
  std::vector<ManagedStream*> plan_candidates;  ///< This cycle's chain.
  /// Eligible candidates keyed by projection fingerprint — one pipeline
  /// pointer chase per stream per planning pass; the group sort and the
  /// run scan compare flat keys.
  std::vector<std::pair<std::uint64_t, ManagedStream*>> plan_keys;
  std::vector<GroupMember> plan;                ///< The current group.
  linalg::Matrix stage_x;       ///< [coalesce_rows x dim] gathered inputs.
  linalg::Matrix stage_hidden;  ///< Shared projection of stage_x.
  std::vector<int> stage_labels;
  /// Prepacked GEMM panels of the group projection's alpha, keyed by the
  /// raw projection fingerprint (tier-independent — the pack depends only
  /// on alpha's bytes). The high-density steady state drains one seeded
  /// template group per shard, so the pack survives across mega-batches and
  /// each GEMM skips its per-call B-pack.
  linalg::PackedGemmB packed_alpha;
  std::uint64_t packed_alpha_fp = 0;
  bool packed_alpha_valid = false;
};

}  // namespace detail
}  // namespace edgedrift::core
