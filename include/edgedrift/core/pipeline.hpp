// edgedrift::Pipeline — the public facade tying together the paper's full
// proposed system: the multi-instance OS-ELM discriminative model
// (Section 3.1), a pluggable concept-drift detector (Algorithm 1's centroid
// method by default, or any of the library's nine detector families via
// drift::DetectorSpec) and a pluggable drift response (streaming model
// reconstruction, Algorithms 2-4, by default).
//
// Typical use:
//   core::PipelineConfig config;
//   config.num_labels = 2; config.input_dim = 38; config.hidden_dim = 22;
//   core::Pipeline pipeline(config);
//   pipeline.fit(train_x, train_labels);
//   for (each streamed sample x) {
//     auto step = pipeline.process(x);
//     // step.prediction, step.drift_detected, step.reconstructing ...
//   }
// or, when samples arrive in blocks:
//   auto steps = pipeline.process_batch(block);   // == process() row by row
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/detector_factory.hpp"
#include "edgedrift/drift/reconstructor.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/obs/stream_obs.hpp"
#include "edgedrift/oselm/activation.hpp"
#include "edgedrift/util/stage_timer.hpp"

namespace edgedrift::core {

/// What the pipeline does once its detector fires.
enum class RecoveryPolicy {
  /// Streaming model reconstruction (paper Algorithms 2-4): reset the
  /// instances, re-place the label coordinates, self-label retrain, then
  /// re-arm the detector against the rebuilt concept.
  kReconstruct,
  /// Reset the model to the sequential prior and self-label retrain for
  /// reconstruction.n_total samples, skipping the coordinate search; the
  /// detector is re-armed on the per-label running centroids of the
  /// recovery samples. Cheaper than kReconstruct, no cluster re-alignment.
  kResetRecalibrate,
  /// Record the detection and reset the detector; the model is left
  /// untouched. For monitoring/evaluation of detectors in isolation.
  kDetectOnly,
};

/// Everything configurable about the streaming system.
struct PipelineConfig {
  std::size_t num_labels = 2;
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 22;  ///< Paper: 22 for both datasets.
  oselm::Activation activation = oselm::Activation::kSigmoid;
  double weight_scale = 1.0;
  double reg_lambda = 1e-2;

  /// Anomaly gate of Algorithm 1 line 8. <= 0 auto-calibrates from the
  /// training scores as mean + theta_error_z * stddev.
  double theta_error = 0.0;
  double theta_error_z = 3.0;

  /// Eq. 1 tuning parameter for the drift threshold.
  double z = 1.0;

  /// Detector window / behaviour (num_labels/dim/theta_* filled by fit()).
  std::size_t window_size = 100;
  double ewma_decay = 0.0;
  long detector_initial_count = -1;

  /// Which drift detector runs the detect-and-retrain loop.
  drift::DetectorSpec detector;

  /// What a detection triggers.
  RecoveryPolicy recovery = RecoveryPolicy::kReconstruct;

  drift::ReconstructorConfig reconstruction;

  /// Largest block process_batch() scores through the GEMM kernels at once
  /// (bounds the batch workspace size).
  std::size_t max_batch_rows = 256;

  /// Chunked rank-k training (opt-in). 1 — the default — keeps the exact
  /// per-sample recovery path, bit-identical to every release so far. A
  /// value k > 1 lets a batched drain consume recovery training samples in
  /// chunks of up to k: the chunk's winners are bucketed per instance, each
  /// bucket absorbed by one Woodbury block update
  /// (OsElm::train_batch_from_hidden), and the f32/i8 replica requantized
  /// once per bucket instead of once per sample. Decision-equivalent, not
  /// bit-identical, to the per-sample path (validated for k in {2,4,8} by
  /// tests/test_chunked_train.cpp across all numerics tiers); the effective
  /// chunk is capped by max_batch_rows. Scalar process() always stays
  /// per-sample — chunking is a property of the batch entry points.
  std::size_t train_chunk = 1;

  /// Scoring numerics tier (linalg/numerics.hpp): kExactF64 is the
  /// bit-identical reference, kFastF32/kQuantI8 score against the
  /// packed-beta replicas under the error-bounded drift-decision-
  /// equivalence contract. Training is f64 in every tier; theta_error
  /// calibration runs through the same tier as streaming scoring, so the
  /// gate is consistent with the scores it gates.
  linalg::NumericsTier numerics = linalg::NumericsTier::kExactF64;

  /// Runtime observability (obs::StreamObs): counters, stage latency
  /// histograms and the drift journal. Recording is observation-only —
  /// obs-on and obs-off runs are bit-identical (tests/test_obs.cpp) — and
  /// allocation-free on the steady-state path. Compile with
  /// EDGEDRIFT_NO_OBS to remove the layer entirely.
  obs::ObsOptions obs;

  std::uint64_t seed = 1;
};

/// One processed sample.
struct PipelineStep {
  model::Prediction prediction;   ///< Label + anomaly score.
  bool drift_detected = false;    ///< Drift fired on this sample.
  bool reconstructing = false;    ///< A recovery consumed this sample.
  bool reconstruction_finished = false;  ///< This sample completed it.
  bool collecting_reference = false;     ///< Post-recovery reference refill.
  double statistic = 0.0;         ///< Detector distance when a window closed.
  bool statistic_valid = false;
};

/// Aggregate counters of one pipeline's streaming history.
struct PipelineStats {
  std::size_t samples = 0;          ///< process()ed samples.
  std::size_t drifts = 0;           ///< Detections fired.
  std::size_t recoveries = 0;       ///< Recoveries completed.
  std::size_t recovery_samples = 0; ///< Samples consumed by recoveries.
  std::size_t batch_chunks = 0;     ///< GEMM pre-scored chunks issued.
  std::size_t batch_rows = 0;       ///< Samples served by a pre-scored chunk.

  PipelineStats& operator+=(const PipelineStats& o) {
    samples += o.samples;
    drifts += o.drifts;
    recoveries += o.recoveries;
    recovery_samples += o.recovery_samples;
    batch_chunks += o.batch_chunks;
    batch_rows += o.batch_rows;
    return *this;
  }
};

/// The detect-and-retrain system behind one object.
class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  /// Batch initial training: fits the per-label autoencoders, calibrates
  /// theta_error from the training scores, then calibrates the detector
  /// (trained centroids + theta_drift via Eq. 1 for the centroid family;
  /// reference fit for the batch family) in a single pass.
  void fit(const linalg::Matrix& x, std::span<const int> labels);

  /// Processes one streamed sample through the detect-and-retrain loop.
  /// `true_label` (optional) feeds the error-rate detectors (DDM, EDDM,
  /// ADWIN) their supervised mistake stream; it is never shown to the model.
  PipelineStep process(std::span<const double> x, int true_label = -1);

  /// Processes a block of samples, scoring them through the GEMM batch
  /// kernels while the model is frozen. Results are sample-for-sample
  /// bit-identical to calling process() row by row; the pipeline falls back
  /// to the sequential path while a recovery is training the model.
  /// `true_labels` is empty or one label per row.
  std::vector<PipelineStep> process_batch(
      const linalg::Matrix& x, std::span<const int> true_labels = {});

  /// Core of process_batch(): appends the steps for rows
  /// [row_begin, row_end) of `x` to `out` without clearing it. This is the
  /// drain entry point for PipelineManager's ring buffer — the ring's slab
  /// is the matrix and a drain burst is a row range, so no per-drain copy
  /// or allocation happens here (out must have capacity; the internal chunk
  /// buffers are grow-only). `true_labels` is empty or holds at least
  /// row_end entries, indexed by absolute row (-1 = no label).
  void process_batch_range(const linalg::Matrix& x, std::size_t row_begin,
                           std::size_t row_end,
                           std::span<const int> true_labels,
                           std::vector<PipelineStep>& out);

  /// process_batch_range with the hidden-space projection supplied by the
  /// caller: `hidden` row i holds g(x.row(i) * A + b) for this pipeline's
  /// projection (or any projection with an equal fingerprint — see
  /// projection_fingerprint()). This is the scatter half of the serving
  /// layer's coalesced drain: the shard worker projects one mega-batch for
  /// a whole projection group, then each member stream scores its row block
  /// through here without re-running the GEMM. The projection is immutable
  /// and row-independent, so the steps are bit-identical to
  /// process_batch_range() on the same rows at f64 and identical in the
  /// approximate tiers — including across a mid-range drift: once a
  /// recovery starts, the remaining rows fall back to the sequential
  /// recovery path exactly as process_batch_range() does (the supplied
  /// hidden rows stay valid regardless, since recovery retrains beta, never
  /// the projection).
  void process_batch_from_hidden(const linalg::Matrix& x,
                                 const linalg::Matrix& hidden,
                                 std::size_t row_begin, std::size_t row_end,
                                 std::span<const int> true_labels,
                                 std::vector<PipelineStep>& out);

  /// Scalar process() with the hidden-space projection supplied by the
  /// caller (same contract on `hidden` as process_batch_from_hidden, for
  /// one row). The coalesced drain's single-row scatter path: a 1-row
  /// member pays the lean per-sample step — exactly what the per-stream
  /// drain's burst==1 fast path pays, minus the projection matvec — instead
  /// of the batch machinery. Bit-identical to process(x, true_label) at
  /// f64; falls back to the sequential recovery path exactly as process()
  /// does (`hidden` is unused there — recovery retrains beta, never the
  /// projection).
  PipelineStep process_from_hidden(std::span<const double> x,
                                   std::span<const double> hidden,
                                   int true_label = -1);

  /// Identity of this pipeline's shared-projection coalescing group: the
  /// projection's alpha/bias/shape/activation fingerprint folded with the
  /// numerics tier. Equal values guarantee bit-identical hidden batches and
  /// the same scoring replica format, which is the precondition for the
  /// serving layer to share one projection GEMM across streams. Recorded at
  /// construction, carried through checkpoints (the restored projection
  /// recomputes the same digest from the same bytes).
  std::uint64_t projection_fingerprint() const { return projection_fp_; }

  bool fitted() const { return fitted_; }
  bool reconstructing() const {
    return state_ == RecoveryState::kReconstructing;
  }
  /// True while any recovery (reconstruction or recalibration) is running.
  bool recovering() const {
    return state_ == RecoveryState::kReconstructing ||
           state_ == RecoveryState::kRecalibrating;
  }

  const PipelineConfig& config() const { return config_; }
  const model::MultiInstanceModel& model() const { return *model_; }
  const drift::Detector& detector() const { return *detector_; }
  const drift::Reconstructor& reconstructor() const { return reconstructor_; }
  double theta_error() const { return theta_error_; }
  const PipelineStats& stats() const { return stats_; }

  /// The runtime observability block. Unlike stats()/the other accessors,
  /// reading it (obs().snapshot(...)) is safe while samples are in flight —
  /// every field is a relaxed atomic or seqlock-guarded record.
  const obs::StreamObs& obs() const { return *obs_; }
  obs::StreamObs& obs() { return *obs_; }

  /// The centroid detector when the configured kind is kCentroid, nullptr
  /// otherwise. Centroid-specific introspection (theta_drift,
  /// top_drifted_dimensions, ...) goes through here.
  const drift::CentroidDetector* centroid_detector() const {
    return centroid_;
  }
  drift::CentroidDetector* centroid_detector_mutable() { return centroid_; }

  // Persistence hooks (see io/checkpoint.hpp): mutable access to the
  // trained state and a way to mark the pipeline usable after that state
  // has been restored externally.
  model::MultiInstanceModel& model_mutable() { return *model_; }
  drift::Detector& detector_mutable() { return *detector_; }
  void finish_restore(double theta_error) {
    theta_error_ = theta_error;
    fitted_ = true;
    if (config_.train_chunk > 1) {
      // Mirror fit()'s pre-grow: a restored stream must honor the
      // allocation-free drain contract from its first recovery chunk, and
      // restore (unlike the drain) is allowed to allocate.
      const std::size_t chunk =
          std::min(config_.train_chunk, config_.max_batch_rows);
      model_->reserve_chunk_train(chunk, batch_ws_);
      chunk_labels_.resize(chunk);
    }
  }

  /// Bytes of the complete on-device state (model + detector + recovery
  /// bookkeeping) — what must fit the Pico's 264 kB.
  std::size_t memory_bytes() const;

  /// Bytes of the detection-and-recovery state alone (detector, recovery
  /// bookkeeping, reference buffer, centroid tracker) — the Table 4 figure.
  std::size_t detector_memory_bytes() const;

  /// Attaches a stage timer; subsequent process() calls accumulate the
  /// Table 6 breakdown stages into it. Pass nullptr to detach.
  void set_stage_timer(util::StageTimer* timer) { stages_ = timer; }

  /// Stage names used with the stage timer.
  static constexpr const char* kStagePredict = "label prediction";
  static constexpr const char* kStageDistance = "distance computation";
  static constexpr const char* kStageRetrainNearest =
      "model retraining without label prediction";
  static constexpr const char* kStageRetrainPredict =
      "model retraining with label prediction";
  static constexpr const char* kStageInitCoord =
      "label coordinates initialization";
  static constexpr const char* kStageUpdateCoord = "label coordinates update";

 private:
  /// Where the detect-and-retrain loop currently is.
  enum class RecoveryState {
    kIdle,                 ///< Normal detection.
    kReconstructing,       ///< Algorithms 2-4 are consuming samples.
    kRecalibrating,        ///< kResetRecalibrate retraining is running.
    kCollectingReference,  ///< Refilling a batch detector's reference.
  };

  /// Running per-predicted-label centroids — the pipeline's own estimate of
  /// the current concept, used to seed recoveries for detectors that track
  /// no centroids themselves.
  struct RecentTracker {
    linalg::Matrix centroids;
    std::vector<std::size_t> counts;
  };

  /// True when no recovery is training the model, i.e. predictions are a
  /// pure function of the sample (the precondition for batch pre-scoring).
  bool model_frozen() const {
    return state_ == RecoveryState::kIdle ||
           state_ == RecoveryState::kCollectingReference;
  }

  /// Shared body of process_batch_range / process_batch_from_hidden. When
  /// `hidden` is non-null its rows [row_begin, row_end) are used in place of
  /// the projection GEMM.
  void process_batch_range_impl(const linalg::Matrix& x,
                                const linalg::Matrix* hidden,
                                std::size_t row_begin, std::size_t row_end,
                                std::span<const int> true_labels,
                                std::vector<PipelineStep>& out);

  model::Prediction timed_predict(std::span<const double> x);
  model::Prediction timed_predict_from_hidden(std::span<const double> x,
                                              std::span<const double> hidden);
  /// count_io=false lets the batch path bulk-update the samples_in/out
  /// counters once per chunk instead of twice per sample.
  PipelineStep frozen_step(std::span<const double> x,
                           const model::Prediction& pred, int true_label,
                           bool count_io = true);
  PipelineStep recovery_step(std::span<const double> x);
  PipelineStep recovery_step_impl(std::span<const double> x);

  /// Chunked recovery training (config_.train_chunk > 1 only): consumes up
  /// to train_chunk rows starting at row_begin through the bucketed rank-k
  /// path — Reconstructor::train_chunk for the reconstruction training
  /// phases, an inline chunked kRecalibrating body otherwise — and appends
  /// their steps to `out`. Returns how many rows were consumed; 0 means the
  /// caller must fall back to the per-sample recovery_step() (coordinate
  /// phases, the finishing sample, or a 1-row tail). When `hidden` is
  /// non-null its rows are used in place of the projection GEMM.
  std::size_t recovery_chunk(const linalg::Matrix& x,
                             const linalg::Matrix* hidden,
                             std::size_t row_begin, std::size_t row_end,
                             std::vector<PipelineStep>& out);
  void record_drift_event(const drift::Detection& detection);
  void start_recovery();
  void finish_reconstruction();
  void finish_recalibration();
  void begin_reference_collection();
  void update_tracker(std::size_t label, std::span<const double> x);

  PipelineConfig config_;
  std::unique_ptr<model::MultiInstanceModel> model_;
  std::unique_ptr<drift::Detector> detector_;
  drift::CentroidDetector* centroid_ = nullptr;  ///< Downcast view or null.
  drift::Reconstructor reconstructor_;
  /// Cached coalescing-group digest (projection fingerprint folded with the
  /// numerics tier); immutable after construction, read by the drain
  /// planner's sort comparator on every planning pass.
  std::uint64_t projection_fp_ = 0;
  double theta_error_ = 0.0;
  bool fitted_ = false;
  util::StageTimer* stages_ = nullptr;

  RecoveryState state_ = RecoveryState::kIdle;
  PipelineStats stats_;

  // Observability: the recording block itself, the tick counter selecting
  // which samples get clock-timed score/detect stages, and the
  // preallocated scratch the journal's per-label displacement terms are
  // staged through (all touched only by the consumer thread).
  /// Heap-held so Pipeline stays movable (the obs block owns atomics).
  std::unique_ptr<obs::StreamObs> obs_;
  /// Hot-path copies of obs_->enabled()/latency_sample_mask(): at a few
  /// hundred ns per sample the double dereference through the unique_ptr
  /// is measurable, the two immutable values are not.
  bool obs_enabled_ = false;
  std::uint64_t obs_mask_ = 0;
  std::uint64_t obs_tick_ = 0;
  std::vector<double> obs_label_dist_;

  // Concept tracking for detectors without centroid state.
  bool tracker_enabled_ = false;
  RecentTracker tracker_;
  linalg::Matrix trained_means_;  ///< Per-label anchor for re-alignment.
  std::size_t train_rows_ = 0;

  // kResetRecalibrate bookkeeping.
  RecentTracker recal_;
  std::size_t recal_count_ = 0;

  // Post-recovery reference window for batch detectors (QuantTree, SPLL).
  linalg::Matrix refit_buffer_;
  std::size_t refit_fill_ = 0;

  // process_batch() workspaces, reused across calls. Input chunks are read
  // in place through ConstMatrixView — no staging matrix.
  model::BatchWorkspace batch_ws_;
  std::vector<model::Prediction> chunk_preds_;
  std::vector<std::size_t> chunk_labels_;  ///< Chunked-training winners.

  // Per-sample kernel scratch: the pipeline is the thread of control, so
  // one workspace serves every predict()/score() it issues and keeps the
  // steady-state process() loop free of heap allocations.
  linalg::KernelWorkspace kernel_ws_;
};

}  // namespace edgedrift::core
