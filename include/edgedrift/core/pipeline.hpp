// edgedrift::Pipeline — the public facade tying together the paper's full
// proposed system: the multi-instance OS-ELM discriminative model
// (Section 3.1), the sequential centroid drift detector (Algorithm 1) and
// the streaming model reconstruction (Algorithms 2-4).
//
// Typical use:
//   core::PipelineConfig config;
//   config.num_labels = 2; config.input_dim = 38; config.hidden_dim = 22;
//   core::Pipeline pipeline(config);
//   pipeline.fit(train_x, train_labels);
//   for (each streamed sample x) {
//     auto step = pipeline.process(x);
//     // step.prediction, step.drift_detected, step.reconstructing ...
//   }
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/reconstructor.hpp"
#include "edgedrift/model/multi_instance.hpp"
#include "edgedrift/oselm/activation.hpp"
#include "edgedrift/util/stage_timer.hpp"

namespace edgedrift::core {

/// Everything configurable about the proposed system.
struct PipelineConfig {
  std::size_t num_labels = 2;
  std::size_t input_dim = 0;
  std::size_t hidden_dim = 22;  ///< Paper: 22 for both datasets.
  oselm::Activation activation = oselm::Activation::kSigmoid;
  double weight_scale = 1.0;
  double reg_lambda = 1e-2;

  /// Anomaly gate of Algorithm 1 line 8. <= 0 auto-calibrates from the
  /// training scores as mean + theta_error_z * stddev.
  double theta_error = 0.0;
  double theta_error_z = 3.0;

  /// Eq. 1 tuning parameter for the drift threshold.
  double z = 1.0;

  /// Detector window / behaviour (num_labels/dim/theta_* filled by fit()).
  std::size_t window_size = 100;
  double ewma_decay = 0.0;
  long detector_initial_count = -1;

  drift::ReconstructorConfig reconstruction;

  std::uint64_t seed = 1;
};

/// One processed sample.
struct PipelineStep {
  model::Prediction prediction;   ///< Label + anomaly score.
  bool drift_detected = false;    ///< Drift fired on this sample.
  bool reconstructing = false;    ///< Reconstruction consumed this sample.
  bool reconstruction_finished = false;  ///< This sample completed it.
  double statistic = 0.0;         ///< Detector distance when a window closed.
  bool statistic_valid = false;
};

/// The proposed detect-and-retrain system behind one object.
class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  /// Batch initial training: fits the per-label autoencoders, calibrates the
  /// trained centroids, theta_drift (Eq. 1) and theta_error.
  void fit(const linalg::Matrix& x, std::span<const int> labels);

  /// Processes one streamed sample through Algorithm 1's main loop.
  PipelineStep process(std::span<const double> x);

  bool fitted() const { return fitted_; }
  bool reconstructing() const { return reconstructor_.active(); }

  const PipelineConfig& config() const { return config_; }
  const model::MultiInstanceModel& model() const { return *model_; }
  const drift::CentroidDetector& detector() const { return *detector_; }
  const drift::Reconstructor& reconstructor() const { return reconstructor_; }
  double theta_error() const { return theta_error_; }

  // Persistence hooks (see io/checkpoint.hpp): mutable access to the
  // trained state and a way to mark the pipeline usable after that state
  // has been restored externally.
  model::MultiInstanceModel& model_mutable() { return *model_; }
  drift::CentroidDetector& detector_mutable() { return *detector_; }
  void finish_restore(double theta_error) {
    theta_error_ = theta_error;
    fitted_ = true;
  }

  /// Bytes of the complete on-device state (model + detector +
  /// reconstruction bookkeeping) — what must fit the Pico's 264 kB.
  std::size_t memory_bytes() const;

  /// Attaches a stage timer; subsequent process() calls accumulate the
  /// Table 6 breakdown stages into it. Pass nullptr to detach.
  void set_stage_timer(util::StageTimer* timer) { stages_ = timer; }

  /// Stage names used with the stage timer.
  static constexpr const char* kStagePredict = "label prediction";
  static constexpr const char* kStageDistance = "distance computation";
  static constexpr const char* kStageRetrainNearest =
      "model retraining without label prediction";
  static constexpr const char* kStageRetrainPredict =
      "model retraining with label prediction";
  static constexpr const char* kStageInitCoord =
      "label coordinates initialization";
  static constexpr const char* kStageUpdateCoord = "label coordinates update";

 private:
  void finish_reconstruction();

  PipelineConfig config_;
  std::unique_ptr<model::MultiInstanceModel> model_;
  std::unique_ptr<drift::CentroidDetector> detector_;
  drift::Reconstructor reconstructor_;
  double theta_error_ = 0.0;
  bool fitted_ = false;
  util::StageTimer* stages_ = nullptr;
};

}  // namespace edgedrift::core
