// core::ColdStore — where evicted streams' serialized Pipeline state lives.
//
// One store per shard (so no two shards contend on its mutex). An entry is
// an opaque checkpoint blob (io/checkpoint.hpp format, tier-enforced at
// restore time) held either in memory as a shared immutable string, or —
// when a spill directory is configured — as a file on disk. shared_ptr
// ownership is what makes mass cold-seeding cheap: 100k streams seeded from
// one fitted template all point at the same blob, so the cold side of a
// 100k-stream registration costs one serialization and one allocation.
//
// Thread safety: every method is safe from any thread (internal mutex).
// The serving layer still serializes put/peek/erase *per stream id* through
// the stream's produce mutex; the store's own lock only protects the map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace edgedrift::core {

/// Keyed blob store for cold streams: in-memory by default, spilling
/// per-eviction blobs to `<spill_dir>/edgedrift-stream-<id>.ckpt` when a
/// spill directory is set.
class ColdStore {
 public:
  ColdStore() = default;
  ~ColdStore();

  ColdStore(const ColdStore&) = delete;
  ColdStore& operator=(const ColdStore&) = delete;

  /// Routes future put() blobs to disk. Must name an existing writable
  /// directory; entries already stored are unaffected.
  void set_spill_dir(std::string dir);

  /// Stores the blob for `id` (replacing any previous entry), spilling to
  /// disk when a spill dir is set. Returns false when the spill write
  /// failed (the entry is then kept in memory instead, so the stream stays
  /// restorable).
  bool put(std::uint64_t id, std::shared_ptr<const std::string> blob);

  /// Stores the blob in memory unconditionally — the mass-seeding entry
  /// point, where many ids deliberately share one template blob.
  void put_memory(std::uint64_t id, std::shared_ptr<const std::string> blob);

  /// The blob for `id`; nullptr when absent, when a spilled file cannot be
  /// read back, or when the read-back bytes fail the checksum recorded at
  /// put() time (a truncated or bit-flipped spill file is reported as a
  /// restore failure here, before the checkpoint parser ever sees it).
  /// Verification is folded into the single read pass — the file is read
  /// once and hashed from the in-memory buffer, never re-read. Does not
  /// remove the entry.
  std::shared_ptr<const std::string> peek(std::uint64_t id) const;

  /// Drops the entry (and deletes its spill file, if any).
  void erase(std::uint64_t id);

  bool contains(std::uint64_t id) const;

  /// Entries held.
  std::size_t count() const;

  /// Payload bytes across entries (deduplicated: ids sharing one in-memory
  /// template blob count its bytes once).
  std::size_t bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const std::string> blob;  ///< Null when spilled.
    std::string path;                         ///< Spill file, or empty.
    std::size_t bytes = 0;
    /// FNV-1a of the blob, recorded when a spilled entry is written and
    /// verified by peek() when it is read back. In-memory entries skip it —
    /// their bytes never leave the process.
    std::uint64_t checksum = 0;
  };

  std::string spill_path_locked(std::uint64_t id) const;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::string spill_dir_;
};

}  // namespace edgedrift::core
