// Stream -> shard routing for the sharded serving layer (see
// core/pipeline_manager.hpp).
//
// Assignment must be a pure function of the stream id so a producer can
// route a submit() to its shard without any shared read-write state, and so
// the assignment survives restarts (a cold-store blob written by shard k is
// found by shard k again). A plain `id % shards` would do both, but it maps
// any structured id space (e.g. device ids allocated in contiguous blocks
// per site) onto a handful of shards in lockstep; running the id through a
// finalizing mixer first spreads any id structure evenly. splitmix64's
// finalizer is the standard choice: bijective, two multiplies and three
// xor-shifts, and passes the usual avalanche tests.
#pragma once

#include <cstddef>
#include <cstdint>

namespace edgedrift::core {

/// splitmix64's finalizing mixer (Steele et al.): bijective avalanche over
/// 64-bit ids.
inline std::uint64_t mix_stream_id(std::uint64_t id) {
  id += 0x9e3779b97f4a7c15ULL;
  id = (id ^ (id >> 30)) * 0xbf58476d1ce4e5b9ULL;
  id = (id ^ (id >> 27)) * 0x94d049bb133111ebULL;
  return id ^ (id >> 31);
}

/// The shard owning stream `id` under a `shards`-way split. Stable across
/// processes and calls; `shards` must be > 0.
inline std::size_t shard_of_stream(std::uint64_t id, std::size_t shards) {
  return shards <= 1
             ? 0
             : static_cast<std::size_t>(mix_stream_id(id) %
                                        static_cast<std::uint64_t>(shards));
}

}  // namespace edgedrift::core
