// Dense factorizations and solvers.
//
// The batch ELM initialization needs the regularized pseudo-inverse
// (H^T H + lambda I)^-1 H^T, which we compute through a Cholesky
// factorization of the SPD Gram matrix; LU with partial pivoting backs the
// general-purpose inverse used by tests and the baseline detectors.
#pragma once

#include <optional>
#include <span>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::linalg {

/// LU factorization with partial pivoting: P*A = L*U packed into `lu`.
struct LuFactorization {
  Matrix lu;                     ///< L (unit diagonal, below) and U (on/above).
  std::vector<std::size_t> piv;  ///< Row permutation applied to A.
  int sign = 1;                  ///< Permutation parity (for determinants).
};

/// Factors a square matrix. Returns nullopt when A is numerically singular.
std::optional<LuFactorization> lu_factor(const Matrix& a);

/// Solves A x = b given the factorization. b and x have length n.
void lu_solve(const LuFactorization& f, std::span<const double> b,
              std::span<double> x);

/// Solves A X = B column-by-column.
Matrix lu_solve_matrix(const LuFactorization& f, const Matrix& b);

/// General inverse via LU. Returns nullopt when singular.
std::optional<Matrix> inverse(const Matrix& a);

/// Cholesky factorization A = L L^T of an SPD matrix.
/// Returns nullopt when A is not positive definite.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A x = b with a precomputed Cholesky factor L.
void cholesky_solve(const Matrix& l, std::span<const double> b,
                    std::span<double> x);

/// SPD inverse via Cholesky. Returns nullopt when not positive definite.
std::optional<Matrix> spd_inverse(const Matrix& a);

/// (A^T A + lambda I)^-1, the core of regularized least squares.
/// lambda > 0 guarantees positive definiteness.
Matrix regularized_gram_inverse(const Matrix& a, double lambda);

/// Ridge pseudo-inverse pinv(A) = (A^T A + lambda I)^-1 A^T.
Matrix regularized_pinv(const Matrix& a, double lambda);

/// Solves min ||A X - B||^2 + lambda ||X||^2 (ridge least squares).
Matrix ridge_least_squares(const Matrix& a, const Matrix& b, double lambda);

}  // namespace edgedrift::linalg
