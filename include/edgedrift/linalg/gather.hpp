// Wrap-aware row gather for ring-buffer slabs.
//
// The serving layer's coalesced drain packs pending ring rows from many
// streams into one contiguous staging slab before running a single shared
// projection GEMM (docs/ARCHITECTURE.md, "Cross-stream coalesced drain").
// A ring burst occupies at most two contiguous row segments of its slab, so
// the gather is at most two memcpy calls — never a per-row loop.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>

#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/util/assert.hpp"

namespace edgedrift::linalg {

/// Copies `count` rows of the ring slab `src` into rows
/// [dst_begin, dst_begin + count) of `dst`, reading from ring slot
/// `first_slot` and wrapping at src.rows(). `dst` must already be sized;
/// column counts must match. Row-major storage makes each unwrapped segment
/// one contiguous block, so the copy is one memcpy, or two when the burst
/// wraps.
inline void gather_ring_rows(const Matrix& src, std::size_t first_slot,
                             std::size_t count, Matrix& dst,
                             std::size_t dst_begin) {
  EDGEDRIFT_ASSERT(src.cols() == dst.cols(), "gather column mismatch");
  EDGEDRIFT_ASSERT(first_slot < src.rows() && count <= src.rows(),
                   "gather burst exceeds ring capacity");
  EDGEDRIFT_ASSERT(dst_begin + count <= dst.rows(),
                   "gather destination overflow");
  if (count == 0) return;
  const std::size_t first_len = std::min(count, src.rows() - first_slot);
  std::memcpy(dst.row(dst_begin).data(), src.row(first_slot).data(),
              first_len * src.cols() * sizeof(double));
  if (first_len < count) {
    std::memcpy(dst.row(dst_begin + first_len).data(), src.row(0).data(),
                (count - first_len) * src.cols() * sizeof(double));
  }
}

/// The same wrap rule for a ring's per-slot side array (labels). Reads
/// `count` values starting at `first_slot`, wrapping at src.size(); writes
/// them to dst[0..count).
inline void gather_ring_values(std::span<const int> src,
                               std::size_t first_slot, std::size_t count,
                               std::span<int> dst) {
  EDGEDRIFT_ASSERT(first_slot < src.size() && count <= src.size(),
                   "gather burst exceeds ring capacity");
  EDGEDRIFT_ASSERT(dst.size() >= count, "gather destination overflow");
  if (count == 0) return;
  const std::size_t first_len = std::min(count, src.size() - first_slot);
  std::memcpy(dst.data(), src.data() + first_slot, first_len * sizeof(int));
  if (first_len < count) {
    std::memcpy(dst.data() + first_len, src.data(),
                (count - first_len) * sizeof(int));
  }
}

}  // namespace edgedrift::linalg
