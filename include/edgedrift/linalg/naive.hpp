// Naive reference kernels — the pre-SIMD scalar implementations, kept
// verbatim so (a) the kernel tests can compare the vectorized layer against
// an independent, obviously-correct reference, and (b) bench_microkernels
// can report the optimized-vs-scalar speedup from within one binary
// (BENCH_kernels.json tracks that ratio over time).
//
// These are NOT used by any production path. Results match the vectorized
// kernels to the 1e-12 relative-tolerance policy, not bit-exactly: the SIMD
// backends fuse multiply-adds and reduce with multiple accumulators.
#pragma once

#include <span>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::linalg::naive {

/// C = A * B, the pre-SIMD cache-blocked scalar kernel (i-k-j loop order
/// with the historical zero-skip branch).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B, scalar outer-product accumulation.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T, scalar row-dot kernel.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// y = A * x, one scalar dot per row.
void matvec(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = A^T * x, scalar axpy accumulation with the historical zero-skip.
void matvec_transposed(const Matrix& a, std::span<const double> x,
                       std::span<double> y);

/// A += alpha * u * v^T, scalar.
void ger(Matrix& a, double alpha, std::span<const double> u,
         std::span<const double> v);

/// Plain ascending scalar dot product.
double dot(std::span<const double> a, std::span<const double> b);

}  // namespace edgedrift::linalg::naive
