// Per-pipeline scratch for the per-sample scoring path.
//
// Ownership rule (docs/ARCHITECTURE.md, "Kernel layer & numerics policy"):
// the workspace belongs to the CALLER — one per pipeline / per thread of
// control — and is threaded down through predict()/score() so those methods
// can stay const and safe for concurrent use on a frozen model (each caller
// brings its own buffers; the model itself holds no mutable scratch).
// Buffers grow on first use and are then reused, which is what makes the
// steady-state Pipeline::process() loop perform zero heap allocations
// per sample (locked in by tests/test_allocation_free.cpp).
//
// The f32/i8 buffers are the tiered-scoring scratch (linalg/numerics.hpp):
// narrowed activations, float reconstructions, int8 codes and the int32
// dot-product accumulators. They stay empty in the f64 tier — a pipeline
// that never leaves the reference tier pays zero extra bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace edgedrift::linalg {

/// Grow-only named scratch buffers for the per-sample kernel stack. The
/// buffers are distinct because one prediction uses them simultaneously:
/// scores(num_labels) while each instance fills recon(input_dim) from
/// hidden(hidden_dim).
class KernelWorkspace {
 public:
  /// Hidden-activation scratch (length = hidden_dim).
  std::span<double> hidden(std::size_t n) { return ensure(hidden_, n); }

  /// Reconstruction / model-output scratch (length = output_dim).
  std::span<double> recon(std::size_t n) { return ensure(recon_, n); }

  /// Per-label score scratch (length = num_labels).
  std::span<double> scores(std::size_t n) { return ensure(scores_, n); }

  /// f32-tier scratch: narrowed input (length = input_dim).
  std::span<float> input_f32(std::size_t n) { return ensure(input_f32_, n); }

  /// f32-tier scratch: narrowed hidden activation (length = hidden_dim).
  std::span<float> hidden_f32(std::size_t n) { return ensure(hidden_f32_, n); }

  /// f32/i8-tier scratch: float reconstruction (length = C * input_dim).
  std::span<float> recon_f32(std::size_t n) { return ensure(recon_f32_, n); }

  /// i8-tier scratch: quantized hidden codes (length = hidden_dim).
  std::span<std::int8_t> hidden_i8(std::size_t n) {
    return ensure(hidden_i8_, n);
  }

  /// i8-tier scratch: int32 dot-product accumulators (length = C * input_dim).
  std::span<std::int32_t> accum_i32(std::size_t n) {
    return ensure(accum_i32_, n);
  }

  /// Heap bytes held (memory-audit accounting).
  std::size_t memory_bytes() const {
    return (hidden_.capacity() + recon_.capacity() + scores_.capacity()) *
               sizeof(double) +
           (input_f32_.capacity() + hidden_f32_.capacity() +
            recon_f32_.capacity()) *
               sizeof(float) +
           hidden_i8_.capacity() * sizeof(std::int8_t) +
           accum_i32_.capacity() * sizeof(std::int32_t);
  }

 private:
  template <typename T>
  static std::span<T> ensure(std::vector<T>& buf, std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  std::vector<double> hidden_;
  std::vector<double> recon_;
  std::vector<double> scores_;
  std::vector<float> input_f32_;
  std::vector<float> hidden_f32_;
  std::vector<float> recon_f32_;
  std::vector<std::int8_t> hidden_i8_;
  std::vector<std::int32_t> accum_i32_;
};

}  // namespace edgedrift::linalg
