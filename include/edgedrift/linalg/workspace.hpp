// Per-pipeline scratch for the per-sample scoring path.
//
// Ownership rule (docs/ARCHITECTURE.md, "Kernel layer & numerics policy"):
// the workspace belongs to the CALLER — one per pipeline / per thread of
// control — and is threaded down through predict()/score() so those methods
// can stay const and safe for concurrent use on a frozen model (each caller
// brings its own buffers; the model itself holds no mutable scratch).
// Buffers grow on first use and are then reused, which is what makes the
// steady-state Pipeline::process() loop perform zero heap allocations
// per sample (locked in by tests/test_allocation_free.cpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace edgedrift::linalg {

/// Grow-only named scratch buffers for the per-sample kernel stack. The
/// three buffers are distinct because one prediction uses them
/// simultaneously: scores(num_labels) while each instance fills
/// recon(input_dim) from hidden(hidden_dim).
class KernelWorkspace {
 public:
  /// Hidden-activation scratch (length = hidden_dim).
  std::span<double> hidden(std::size_t n) { return ensure(hidden_, n); }

  /// Reconstruction / model-output scratch (length = output_dim).
  std::span<double> recon(std::size_t n) { return ensure(recon_, n); }

  /// Per-label score scratch (length = num_labels).
  std::span<double> scores(std::size_t n) { return ensure(scores_, n); }

  /// Heap bytes held (memory-audit accounting).
  std::size_t memory_bytes() const {
    return (hidden_.capacity() + recon_.capacity() + scores_.capacity()) *
           sizeof(double);
  }

 private:
  static std::span<double> ensure(std::vector<double>& buf, std::size_t n) {
    if (buf.size() < n) buf.resize(n);
    return {buf.data(), n};
  }

  std::vector<double> hidden_;
  std::vector<double> recon_;
  std::vector<double> scores_;
};

}  // namespace edgedrift::linalg
