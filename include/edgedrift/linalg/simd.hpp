// SIMD abstraction for the dense kernels (gemm.cpp / vector_ops.cpp /
// updates.cpp).
//
// Three backends, chosen at configure time (see the EDGEDRIFT_SIMD and
// EDGEDRIFT_NATIVE CMake options):
//   - AVX2/FMA  when the translation unit is compiled with -mavx2 -mfma
//     (or -march=native on such a host),
//   - NEON      on AArch64 (part of the baseline ABI there),
//   - portable  otherwise: a 4-wide unrolled-scalar struct the compiler can
//     autovectorize, with no ISA assumptions beyond plain doubles.
// Defining EDGEDRIFT_SIMD_FORCE_PORTABLE pins the portable backend even when
// the compiler flags would allow a vector ISA.
//
// Numerics policy (docs/ARCHITECTURE.md, "Kernel layer & numerics policy"):
// every per-element accumulation in the kernels is one `madd()` — a fused
// multiply-add on the SIMD backends, an unfused multiply-then-add on the
// portable backend. Kernels that must stay bit-identical across the scalar
// and batch paths of one build (matvec_transposed vs. the GEMM microkernel)
// accumulate each output element as a single ascending-k madd chain, so the
// result is independent of lane arrangement and tail handling. Reductions
// (dot, distances) use multiple accumulators and are only tolerance-
// comparable to a naive loop.
#pragma once

#include <cmath>
#include <cstddef>

#if !defined(EDGEDRIFT_SIMD_FORCE_PORTABLE)
#if defined(__AVX2__) && defined(__FMA__)
#define EDGEDRIFT_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define EDGEDRIFT_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

#if defined(__GNUC__) || defined(__clang__)
#define EDGEDRIFT_RESTRICT __restrict__
#define EDGEDRIFT_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define EDGEDRIFT_RESTRICT
#define EDGEDRIFT_ALWAYS_INLINE inline
#endif

namespace edgedrift::linalg::simd {

#if defined(EDGEDRIFT_SIMD_AVX2)
inline constexpr const char* kLevelName = "avx2-fma";
#elif defined(EDGEDRIFT_SIMD_NEON)
inline constexpr const char* kLevelName = "neon";
#else
inline constexpr const char* kLevelName = "portable";
#endif

/// The one per-element accumulation op of the kernel layer: acc + a*b,
/// fused on the SIMD backends so scalar tails round exactly like the vector
/// body (vfmadd/vfma have the same single rounding as std::fma).
EDGEDRIFT_ALWAYS_INLINE double madd(double a, double b, double acc) {
#if defined(EDGEDRIFT_SIMD_AVX2) || defined(EDGEDRIFT_SIMD_NEON)
  return std::fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

#if defined(EDGEDRIFT_SIMD_AVX2)

using VDouble = __m256d;
inline constexpr std::size_t kLanes = 4;

EDGEDRIFT_ALWAYS_INLINE VDouble vzero() { return _mm256_setzero_pd(); }
EDGEDRIFT_ALWAYS_INLINE VDouble vbroadcast(double x) {
  return _mm256_set1_pd(x);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vload(const double* p) {
  return _mm256_loadu_pd(p);
}
EDGEDRIFT_ALWAYS_INLINE void vstore(double* p, VDouble v) {
  _mm256_storeu_pd(p, v);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vadd(VDouble a, VDouble b) {
  return _mm256_add_pd(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vsub(VDouble a, VDouble b) {
  return _mm256_sub_pd(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmul(VDouble a, VDouble b) {
  return _mm256_mul_pd(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmax(VDouble a, VDouble b) {
  return _mm256_max_pd(a, b);
}
/// a*b + acc with one rounding — the vector form of madd().
EDGEDRIFT_ALWAYS_INLINE VDouble vfmadd(VDouble a, VDouble b, VDouble acc) {
  return _mm256_fmadd_pd(a, b, acc);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vabs(VDouble a) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
}
EDGEDRIFT_ALWAYS_INLINE double vreduce_add(VDouble v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d sum1 = _mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2));
  return _mm_cvtsd_f64(sum1);
}

#elif defined(EDGEDRIFT_SIMD_NEON)

using VDouble = float64x2_t;
inline constexpr std::size_t kLanes = 2;

EDGEDRIFT_ALWAYS_INLINE VDouble vzero() { return vdupq_n_f64(0.0); }
EDGEDRIFT_ALWAYS_INLINE VDouble vbroadcast(double x) { return vdupq_n_f64(x); }
EDGEDRIFT_ALWAYS_INLINE VDouble vload(const double* p) { return vld1q_f64(p); }
EDGEDRIFT_ALWAYS_INLINE void vstore(double* p, VDouble v) { vst1q_f64(p, v); }
EDGEDRIFT_ALWAYS_INLINE VDouble vadd(VDouble a, VDouble b) {
  return vaddq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vsub(VDouble a, VDouble b) {
  return vsubq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmul(VDouble a, VDouble b) {
  return vmulq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmax(VDouble a, VDouble b) {
  return vmaxq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vfmadd(VDouble a, VDouble b, VDouble acc) {
  return vfmaq_f64(acc, a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vabs(VDouble a) { return vabsq_f64(a); }
EDGEDRIFT_ALWAYS_INLINE double vreduce_add(VDouble v) {
  return vaddvq_f64(v);
}

#else  // portable: 4-wide unrolled scalar, autovectorizable, no ISA deps.

struct VDouble {
  double lane[4];
};
inline constexpr std::size_t kLanes = 4;

EDGEDRIFT_ALWAYS_INLINE VDouble vzero() { return VDouble{{0.0, 0.0, 0.0, 0.0}}; }
EDGEDRIFT_ALWAYS_INLINE VDouble vbroadcast(double x) {
  return VDouble{{x, x, x, x}};
}
EDGEDRIFT_ALWAYS_INLINE VDouble vload(const double* p) {
  return VDouble{{p[0], p[1], p[2], p[3]}};
}
EDGEDRIFT_ALWAYS_INLINE void vstore(double* p, VDouble v) {
  p[0] = v.lane[0];
  p[1] = v.lane[1];
  p[2] = v.lane[2];
  p[3] = v.lane[3];
}
EDGEDRIFT_ALWAYS_INLINE VDouble vadd(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vsub(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmul(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmax(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  }
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vfmadd(VDouble a, VDouble b, VDouble acc) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lane[i] = madd(a.lane[i], b.lane[i], acc.lane[i]);
  }
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vabs(VDouble a) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = std::abs(a.lane[i]);
  return r;
}
EDGEDRIFT_ALWAYS_INLINE double vreduce_add(VDouble v) {
  return (v.lane[0] + v.lane[1]) + (v.lane[2] + v.lane[3]);
}

#endif

/// y[0:n] += s * x[0:n], one madd-chain link per element. The shared body of
/// matvec_transposed / ger / axpy and the GEMM reference semantics: per
/// element this is exactly `y[j] = madd(s, x[j], y[j])`, so any kernel built
/// from repeated scaled_accumulate calls (ascending k) rounds identically to
/// the register-tiled microkernel.
EDGEDRIFT_ALWAYS_INLINE void scaled_accumulate(
    double s, const double* EDGEDRIFT_RESTRICT x, double* EDGEDRIFT_RESTRICT y,
    std::size_t n) {
  const VDouble vs = vbroadcast(s);
  std::size_t j = 0;
  for (; j + 2 * kLanes <= n; j += 2 * kLanes) {
    vstore(y + j, vfmadd(vs, vload(x + j), vload(y + j)));
    vstore(y + j + kLanes,
           vfmadd(vs, vload(x + j + kLanes), vload(y + j + kLanes)));
  }
  for (; j + kLanes <= n; j += kLanes) {
    vstore(y + j, vfmadd(vs, vload(x + j), vload(y + j)));
  }
  for (; j < n; ++j) y[j] = madd(s, x[j], y[j]);
}

/// Multi-accumulator dot product. NOT order-compatible with a naive scalar
/// loop — callers relying on dot() live outside the bit-identity contract.
EDGEDRIFT_ALWAYS_INLINE double dot_product(const double* EDGEDRIFT_RESTRICT a,
                                           const double* EDGEDRIFT_RESTRICT b,
                                           std::size_t n) {
  VDouble acc0 = vzero();
  VDouble acc1 = vzero();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
    acc1 = vfmadd(vload(a + i + kLanes), vload(b + i + kLanes), acc1);
  }
  for (; i + kLanes <= n; i += kLanes) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
  }
  double acc = vreduce_add(vadd(acc0, acc1));
  for (; i < n; ++i) acc = madd(a[i], b[i], acc);
  return acc;
}

}  // namespace edgedrift::linalg::simd
