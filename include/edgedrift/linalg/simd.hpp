// SIMD abstraction for the dense kernels (gemm.cpp / vector_ops.cpp /
// updates.cpp).
//
// Three backends, chosen at configure time (see the EDGEDRIFT_SIMD and
// EDGEDRIFT_NATIVE CMake options):
//   - AVX2/FMA  when the translation unit is compiled with -mavx2 -mfma
//     (or -march=native on such a host),
//   - NEON      on AArch64 (part of the baseline ABI there),
//   - portable  otherwise: a 4-wide unrolled-scalar struct the compiler can
//     autovectorize, with no ISA assumptions beyond plain doubles.
// Defining EDGEDRIFT_SIMD_FORCE_PORTABLE pins the portable backend even when
// the compiler flags would allow a vector ISA.
//
// Numerics policy (docs/ARCHITECTURE.md, "Kernel layer & numerics policy"):
// every per-element accumulation in the kernels is one `madd()` — a fused
// multiply-add on the SIMD backends, an unfused multiply-then-add on the
// portable backend. Kernels that must stay bit-identical across the scalar
// and batch paths of one build (matvec_transposed vs. the GEMM microkernel)
// accumulate each output element as a single ascending-k madd chain, so the
// result is independent of lane arrangement and tail handling. Reductions
// (dot, distances) use multiple accumulators and are only tolerance-
// comparable to a naive loop.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if !defined(EDGEDRIFT_SIMD_FORCE_PORTABLE)
#if defined(__AVX2__) && defined(__FMA__)
#define EDGEDRIFT_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__ARM_NEON) && defined(__aarch64__)
#define EDGEDRIFT_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

#if defined(__GNUC__) || defined(__clang__)
#define EDGEDRIFT_RESTRICT __restrict__
#define EDGEDRIFT_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define EDGEDRIFT_RESTRICT
#define EDGEDRIFT_ALWAYS_INLINE inline
#endif

namespace edgedrift::linalg::simd {

#if defined(EDGEDRIFT_SIMD_AVX2)
inline constexpr const char* kLevelName = "avx2-fma";
#elif defined(EDGEDRIFT_SIMD_NEON)
inline constexpr const char* kLevelName = "neon";
#else
inline constexpr const char* kLevelName = "portable";
#endif

/// The one per-element accumulation op of the kernel layer: acc + a*b,
/// fused on the SIMD backends so scalar tails round exactly like the vector
/// body (vfmadd/vfma have the same single rounding as std::fma).
EDGEDRIFT_ALWAYS_INLINE double madd(double a, double b, double acc) {
#if defined(EDGEDRIFT_SIMD_AVX2) || defined(EDGEDRIFT_SIMD_NEON)
  return std::fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

#if defined(EDGEDRIFT_SIMD_AVX2)

using VDouble = __m256d;
inline constexpr std::size_t kLanes = 4;

EDGEDRIFT_ALWAYS_INLINE VDouble vzero() { return _mm256_setzero_pd(); }
EDGEDRIFT_ALWAYS_INLINE VDouble vbroadcast(double x) {
  return _mm256_set1_pd(x);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vload(const double* p) {
  return _mm256_loadu_pd(p);
}
EDGEDRIFT_ALWAYS_INLINE void vstore(double* p, VDouble v) {
  _mm256_storeu_pd(p, v);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vadd(VDouble a, VDouble b) {
  return _mm256_add_pd(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vsub(VDouble a, VDouble b) {
  return _mm256_sub_pd(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmul(VDouble a, VDouble b) {
  return _mm256_mul_pd(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmax(VDouble a, VDouble b) {
  return _mm256_max_pd(a, b);
}
/// a*b + acc with one rounding — the vector form of madd().
EDGEDRIFT_ALWAYS_INLINE VDouble vfmadd(VDouble a, VDouble b, VDouble acc) {
  return _mm256_fmadd_pd(a, b, acc);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vabs(VDouble a) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
}
EDGEDRIFT_ALWAYS_INLINE double vreduce_add(VDouble v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d sum1 = _mm_add_sd(sum2, _mm_unpackhi_pd(sum2, sum2));
  return _mm_cvtsd_f64(sum1);
}

#elif defined(EDGEDRIFT_SIMD_NEON)

using VDouble = float64x2_t;
inline constexpr std::size_t kLanes = 2;

EDGEDRIFT_ALWAYS_INLINE VDouble vzero() { return vdupq_n_f64(0.0); }
EDGEDRIFT_ALWAYS_INLINE VDouble vbroadcast(double x) { return vdupq_n_f64(x); }
EDGEDRIFT_ALWAYS_INLINE VDouble vload(const double* p) { return vld1q_f64(p); }
EDGEDRIFT_ALWAYS_INLINE void vstore(double* p, VDouble v) { vst1q_f64(p, v); }
EDGEDRIFT_ALWAYS_INLINE VDouble vadd(VDouble a, VDouble b) {
  return vaddq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vsub(VDouble a, VDouble b) {
  return vsubq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmul(VDouble a, VDouble b) {
  return vmulq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmax(VDouble a, VDouble b) {
  return vmaxq_f64(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vfmadd(VDouble a, VDouble b, VDouble acc) {
  return vfmaq_f64(acc, a, b);
}
EDGEDRIFT_ALWAYS_INLINE VDouble vabs(VDouble a) { return vabsq_f64(a); }
EDGEDRIFT_ALWAYS_INLINE double vreduce_add(VDouble v) {
  return vaddvq_f64(v);
}

#else  // portable: 4-wide unrolled scalar, autovectorizable, no ISA deps.

struct VDouble {
  double lane[4];
};
inline constexpr std::size_t kLanes = 4;

EDGEDRIFT_ALWAYS_INLINE VDouble vzero() { return VDouble{{0.0, 0.0, 0.0, 0.0}}; }
EDGEDRIFT_ALWAYS_INLINE VDouble vbroadcast(double x) {
  return VDouble{{x, x, x, x}};
}
EDGEDRIFT_ALWAYS_INLINE VDouble vload(const double* p) {
  return VDouble{{p[0], p[1], p[2], p[3]}};
}
EDGEDRIFT_ALWAYS_INLINE void vstore(double* p, VDouble v) {
  p[0] = v.lane[0];
  p[1] = v.lane[1];
  p[2] = v.lane[2];
  p[3] = v.lane[3];
}
EDGEDRIFT_ALWAYS_INLINE VDouble vadd(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vsub(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmul(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vmax(VDouble a, VDouble b) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lane[i] = a.lane[i] > b.lane[i] ? a.lane[i] : b.lane[i];
  }
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vfmadd(VDouble a, VDouble b, VDouble acc) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) {
    r.lane[i] = madd(a.lane[i], b.lane[i], acc.lane[i]);
  }
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VDouble vabs(VDouble a) {
  VDouble r;
  for (std::size_t i = 0; i < 4; ++i) r.lane[i] = std::abs(a.lane[i]);
  return r;
}
EDGEDRIFT_ALWAYS_INLINE double vreduce_add(VDouble v) {
  return (v.lane[0] + v.lane[1]) + (v.lane[2] + v.lane[3]);
}

#endif

// --------------------------------------------------------------------------
// float32 lane set — the kFastF32 tier's kernels (linalg/numerics.hpp).
//
// Same three backends, twice the lanes per vector: AVX2 __m256 (8), NEON
// float32x4_t (4), portable 8-wide unrolled scalar. The f32 tier carries no
// bit-identity obligation (its contract is error-bounded drift-decision
// equivalence), but the kernels still accumulate per element as single
// ascending-k maddf chains so a portable and a native build differ only by
// fusion/reassociation, not by algorithm.
// --------------------------------------------------------------------------

/// float twin of madd(): acc + a*b, fused on the SIMD backends.
EDGEDRIFT_ALWAYS_INLINE float maddf(float a, float b, float acc) {
#if defined(EDGEDRIFT_SIMD_AVX2) || defined(EDGEDRIFT_SIMD_NEON)
  return std::fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

#if defined(EDGEDRIFT_SIMD_AVX2)

using VFloat = __m256;
inline constexpr std::size_t kLanesF32 = 8;

EDGEDRIFT_ALWAYS_INLINE VFloat vzero_f() { return _mm256_setzero_ps(); }
EDGEDRIFT_ALWAYS_INLINE VFloat vbroadcast(float x) { return _mm256_set1_ps(x); }
EDGEDRIFT_ALWAYS_INLINE VFloat vload(const float* p) {
  return _mm256_loadu_ps(p);
}
EDGEDRIFT_ALWAYS_INLINE void vstore(float* p, VFloat v) {
  _mm256_storeu_ps(p, v);
}
EDGEDRIFT_ALWAYS_INLINE VFloat vadd(VFloat a, VFloat b) {
  return _mm256_add_ps(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VFloat vsub(VFloat a, VFloat b) {
  return _mm256_sub_ps(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VFloat vmul(VFloat a, VFloat b) {
  return _mm256_mul_ps(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VFloat vfmadd(VFloat a, VFloat b, VFloat acc) {
  return _mm256_fmadd_ps(a, b, acc);
}
EDGEDRIFT_ALWAYS_INLINE float vreduce_add(VFloat v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x1));
  return _mm_cvtss_f32(sum);
}

#elif defined(EDGEDRIFT_SIMD_NEON)

using VFloat = float32x4_t;
inline constexpr std::size_t kLanesF32 = 4;

EDGEDRIFT_ALWAYS_INLINE VFloat vzero_f() { return vdupq_n_f32(0.0f); }
EDGEDRIFT_ALWAYS_INLINE VFloat vbroadcast(float x) { return vdupq_n_f32(x); }
EDGEDRIFT_ALWAYS_INLINE VFloat vload(const float* p) { return vld1q_f32(p); }
EDGEDRIFT_ALWAYS_INLINE void vstore(float* p, VFloat v) { vst1q_f32(p, v); }
EDGEDRIFT_ALWAYS_INLINE VFloat vadd(VFloat a, VFloat b) {
  return vaddq_f32(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VFloat vsub(VFloat a, VFloat b) {
  return vsubq_f32(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VFloat vmul(VFloat a, VFloat b) {
  return vmulq_f32(a, b);
}
EDGEDRIFT_ALWAYS_INLINE VFloat vfmadd(VFloat a, VFloat b, VFloat acc) {
  return vfmaq_f32(acc, a, b);
}
EDGEDRIFT_ALWAYS_INLINE float vreduce_add(VFloat v) { return vaddvq_f32(v); }

#else  // portable: 8-wide unrolled scalar, autovectorizable.

struct VFloat {
  float lane[8];
};
inline constexpr std::size_t kLanesF32 = 8;

EDGEDRIFT_ALWAYS_INLINE VFloat vzero_f() {
  return VFloat{{0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f}};
}
EDGEDRIFT_ALWAYS_INLINE VFloat vbroadcast(float x) {
  return VFloat{{x, x, x, x, x, x, x, x}};
}
EDGEDRIFT_ALWAYS_INLINE VFloat vload(const float* p) {
  VFloat r;
  for (std::size_t i = 0; i < 8; ++i) r.lane[i] = p[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE void vstore(float* p, VFloat v) {
  for (std::size_t i = 0; i < 8; ++i) p[i] = v.lane[i];
}
EDGEDRIFT_ALWAYS_INLINE VFloat vadd(VFloat a, VFloat b) {
  VFloat r;
  for (std::size_t i = 0; i < 8; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VFloat vsub(VFloat a, VFloat b) {
  VFloat r;
  for (std::size_t i = 0; i < 8; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VFloat vmul(VFloat a, VFloat b) {
  VFloat r;
  for (std::size_t i = 0; i < 8; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}
EDGEDRIFT_ALWAYS_INLINE VFloat vfmadd(VFloat a, VFloat b, VFloat acc) {
  VFloat r;
  for (std::size_t i = 0; i < 8; ++i) {
    r.lane[i] = maddf(a.lane[i], b.lane[i], acc.lane[i]);
  }
  return r;
}
EDGEDRIFT_ALWAYS_INLINE float vreduce_add(VFloat v) {
  return ((v.lane[0] + v.lane[1]) + (v.lane[2] + v.lane[3])) +
         ((v.lane[4] + v.lane[5]) + (v.lane[6] + v.lane[7]));
}

#endif

/// float overload of scaled_accumulate(): y[0:n] += s * x[0:n], one maddf
/// per element. The body of the f32 GEMM/matvec row kernels.
EDGEDRIFT_ALWAYS_INLINE void scaled_accumulate(
    float s, const float* EDGEDRIFT_RESTRICT x, float* EDGEDRIFT_RESTRICT y,
    std::size_t n) {
  const VFloat vs = vbroadcast(s);
  std::size_t j = 0;
  for (; j + 2 * kLanesF32 <= n; j += 2 * kLanesF32) {
    vstore(y + j, vfmadd(vs, vload(x + j), vload(y + j)));
    vstore(y + j + kLanesF32,
           vfmadd(vs, vload(x + j + kLanesF32), vload(y + j + kLanesF32)));
  }
  for (; j + kLanesF32 <= n; j += kLanesF32) {
    vstore(y + j, vfmadd(vs, vload(x + j), vload(y + j)));
  }
  for (; j < n; ++j) y[j] = maddf(s, x[j], y[j]);
}

/// y[0:n] = s * x[0:n] — the k=0 seed of an f32 GEMM row, saving the
/// pre-zeroing pass scaled_accumulate would need.
EDGEDRIFT_ALWAYS_INLINE void scaled_copy(float s,
                                         const float* EDGEDRIFT_RESTRICT x,
                                         float* EDGEDRIFT_RESTRICT y,
                                         std::size_t n) {
  const VFloat vs = vbroadcast(s);
  std::size_t j = 0;
  for (; j + kLanesF32 <= n; j += kLanesF32) {
    vstore(y + j, vmul(vs, vload(x + j)));
  }
  for (; j < n; ++j) y[j] = s * x[j];
}

/// float overload of the multi-accumulator dot product.
EDGEDRIFT_ALWAYS_INLINE float dot_product(const float* EDGEDRIFT_RESTRICT a,
                                          const float* EDGEDRIFT_RESTRICT b,
                                          std::size_t n) {
  VFloat acc0 = vzero_f();
  VFloat acc1 = vzero_f();
  std::size_t i = 0;
  for (; i + 2 * kLanesF32 <= n; i += 2 * kLanesF32) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
    acc1 = vfmadd(vload(a + i + kLanesF32), vload(b + i + kLanesF32), acc1);
  }
  for (; i + kLanesF32 <= n; i += kLanesF32) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
  }
  float acc = vreduce_add(vadd(acc0, acc1));
  for (; i < n; ++i) acc = maddf(a[i], b[i], acc);
  return acc;
}

/// y[0:n] += s * x[0:n], one madd-chain link per element. The shared body of
/// matvec_transposed / ger / axpy and the GEMM reference semantics: per
/// element this is exactly `y[j] = madd(s, x[j], y[j])`, so any kernel built
/// from repeated scaled_accumulate calls (ascending k) rounds identically to
/// the register-tiled microkernel.
EDGEDRIFT_ALWAYS_INLINE void scaled_accumulate(
    double s, const double* EDGEDRIFT_RESTRICT x, double* EDGEDRIFT_RESTRICT y,
    std::size_t n) {
  const VDouble vs = vbroadcast(s);
  std::size_t j = 0;
  for (; j + 2 * kLanes <= n; j += 2 * kLanes) {
    vstore(y + j, vfmadd(vs, vload(x + j), vload(y + j)));
    vstore(y + j + kLanes,
           vfmadd(vs, vload(x + j + kLanes), vload(y + j + kLanes)));
  }
  for (; j + kLanes <= n; j += kLanes) {
    vstore(y + j, vfmadd(vs, vload(x + j), vload(y + j)));
  }
  for (; j < n; ++j) y[j] = madd(s, x[j], y[j]);
}

/// Multi-accumulator dot product. NOT order-compatible with a naive scalar
/// loop — callers relying on dot() live outside the bit-identity contract.
EDGEDRIFT_ALWAYS_INLINE double dot_product(const double* EDGEDRIFT_RESTRICT a,
                                           const double* EDGEDRIFT_RESTRICT b,
                                           std::size_t n) {
  VDouble acc0 = vzero();
  VDouble acc1 = vzero();
  std::size_t i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
    acc1 = vfmadd(vload(a + i + kLanes), vload(b + i + kLanes), acc1);
  }
  for (; i + kLanes <= n; i += kLanes) {
    acc0 = vfmadd(vload(a + i), vload(b + i), acc0);
  }
  double acc = vreduce_add(vadd(acc0, acc1));
  for (; i < n; ++i) acc = madd(a[i], b[i], acc);
  return acc;
}

// --------------------------------------------------------------------------
// int8 accumulation lanes — the kQuantI8 tier's matvec/GEMM inner loop
// (linalg/quant.cpp).
//
// Contract: acc[j] += x * row[j] (and the two-row fused form), computed
// EXACTLY in int32. Integer accumulation is associative, so any lane width,
// unroll factor or row pairing produces the identical int32 result as the
// scalar loop — the i8 tier's accumulators stay bit-identical across the
// portable and native backends by construction. Preconditions: |x| <= 127
// and |row[j]| <= 127 (the symmetric code domain quantize() emits; -128
// never appears), so per-element products fit in int16 with headroom for
// one two-row sum (|x0*r0 + x1*r1| <= 32258 < 32767 — no saturation in the
// AVX2 maddubs path, no overflow in the NEON int16 path).
// --------------------------------------------------------------------------

#if defined(EDGEDRIFT_SIMD_AVX2)

/// acc[0:n] += x * row[0:n], exact int32. 16 codes per step: sign-extend to
/// int16, mullo (exact — |x*r| <= 16129), widen to int32, add.
EDGEDRIFT_ALWAYS_INLINE void i8_scaled_accumulate(
    std::int32_t x, const std::int8_t* EDGEDRIFT_RESTRICT row,
    std::int32_t* EDGEDRIFT_RESTRICT acc, std::size_t n) {
  const __m256i vx = _mm256_set1_epi16(static_cast<short>(x));
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m128i r8 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + j));
    const __m256i prod = _mm256_mullo_epi16(vx, _mm256_cvtepi8_epi16(r8));
    const __m256i lo32 =
        _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod));
    const __m256i hi32 =
        _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1));
    __m256i* a0 = reinterpret_cast<__m256i*>(acc + j);
    __m256i* a1 = reinterpret_cast<__m256i*>(acc + j + 8);
    _mm256_storeu_si256(a0, _mm256_add_epi32(_mm256_loadu_si256(a0), lo32));
    _mm256_storeu_si256(a1, _mm256_add_epi32(_mm256_loadu_si256(a1), hi32));
  }
  for (; j < n; ++j) acc[j] += x * static_cast<std::int32_t>(row[j]);
}

/// acc[0:n] += x0 * row0[0:n] + x1 * row1[0:n], exact int32. The maddubs
/// scheme: interleave the two rows byte-wise so each 16-bit lane holds one
/// output's (row0[j], row1[j]) pair, put |x0|,|x1| in the unsigned operand
/// and push the signs of x0/x1 onto the row bytes via sign_epi8 — then
/// maddubs computes |x0|*sgn(x0)*row0[j] + |x1|*sgn(x1)*row1[j] =
/// x0*row0[j] + x1*row1[j] per lane, saturation-free by the |sum| <= 32258
/// bound above.
EDGEDRIFT_ALWAYS_INLINE void i8_scaled_accumulate2(
    std::int32_t x0, const std::int8_t* EDGEDRIFT_RESTRICT row0,
    std::int32_t x1, const std::int8_t* EDGEDRIFT_RESTRICT row1,
    std::int32_t* EDGEDRIFT_RESTRICT acc, std::size_t n) {
  const int a0 = x0 < 0 ? -x0 : x0;
  const int a1 = x1 < 0 ? -x1 : x1;
  const __m256i vmag =
      _mm256_set1_epi16(static_cast<short>(a0 | (a1 << 8)));
  const int s0 = (x0 > 0) - (x0 < 0);
  const int s1 = (x1 > 0) - (x1 < 0);
  const __m256i vsign =
      _mm256_set1_epi16(static_cast<short>((s0 & 0xff) | (s1 << 8)));
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m128i r0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row0 + j));
    const __m128i r1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row1 + j));
    const __m256i inter = _mm256_set_m128i(_mm_unpackhi_epi8(r0, r1),
                                           _mm_unpacklo_epi8(r0, r1));
    const __m256i prod =
        _mm256_maddubs_epi16(vmag, _mm256_sign_epi8(inter, vsign));
    const __m256i lo32 =
        _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod));
    const __m256i hi32 =
        _mm256_cvtepi16_epi32(_mm256_extracti128_si256(prod, 1));
    __m256i* p0 = reinterpret_cast<__m256i*>(acc + j);
    __m256i* p1 = reinterpret_cast<__m256i*>(acc + j + 8);
    _mm256_storeu_si256(p0, _mm256_add_epi32(_mm256_loadu_si256(p0), lo32));
    _mm256_storeu_si256(p1, _mm256_add_epi32(_mm256_loadu_si256(p1), hi32));
  }
  for (; j < n; ++j) {
    acc[j] += x0 * static_cast<std::int32_t>(row0[j]) +
              x1 * static_cast<std::int32_t>(row1[j]);
  }
}

#if defined(__GNUC__) || defined(__clang__)
// AVX-VNNI four-row lane: vpdpbusd fuses the byte multiply, the four-way
// lane sum AND the int32 accumulate in one instruction, with no int16
// saturation stage at all (maddubs saturates; the two-row pairing above
// exists to stay under that bound). Compiled behind a function-level target
// attribute so the binary still runs on plain-AVX2 hosts; callers must gate
// on i8_vnni_available().
#define EDGEDRIFT_HAVE_I8_VNNI 1

/// Runtime gate for the VNNI lane, resolved once per process.
inline bool i8_vnni_available() {
  static const bool available = __builtin_cpu_supports("avx512vnni") &&
                                __builtin_cpu_supports("avx512vl");
  return available;
}

/// acc[0:n] += sum_k x[k] * rows[k][0:n] for four rows, exact int32.
/// Column-major byte interleave puts (row0[j], row1[j], row2[j], row3[j])
/// into one 32-bit lane; |x|s ride in the unsigned vpdpbusd operand and
/// their signs are pushed onto the row bytes (sign_epi8), so each lane
/// accumulates x0*r0[j] + x1*r1[j] + x2*r2[j] + x3*r3[j]. The four-product
/// sum is bounded by 4 * 127 * 127 = 64516 and vpdpbusd widens to int32
/// before adding — no saturation anywhere, so the result is bit-identical
/// to the scalar loop (integer accumulation is associative).
__attribute__((target("avx512vnni,avx512vl"))) inline void
i8_scaled_accumulate4_vnni(const std::int32_t* EDGEDRIFT_RESTRICT x,
                           const std::int8_t* const* EDGEDRIFT_RESTRICT rows,
                           std::int32_t* EDGEDRIFT_RESTRICT acc,
                           std::size_t n) {
  const auto mag = [](std::int32_t v) {
    return static_cast<std::uint32_t>(v < 0 ? -v : v);
  };
  const auto sgn = [](std::int32_t v) { return v < 0 ? -1 : 1; };
  const __m256i vmag = _mm256_set1_epi32(static_cast<int>(
      mag(x[0]) | (mag(x[1]) << 8) | (mag(x[2]) << 16) | (mag(x[3]) << 24)));
  const __m256i vsign = _mm256_set1_epi32(
      static_cast<int>((sgn(x[0]) & 0xff) | ((sgn(x[1]) & 0xff) << 8) |
                       ((sgn(x[2]) & 0xff) << 16) |
                       (static_cast<std::uint32_t>(sgn(x[3]) & 0xff) << 24)));
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m128i r0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[0] + j));
    const __m128i r1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[1] + j));
    const __m128i r2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[2] + j));
    const __m128i r3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[3] + j));
    // Byte interleave to column-major: lane j holds r0[j],r1[j],r2[j],r3[j].
    const __m128i ab_lo = _mm_unpacklo_epi8(r0, r1);
    const __m128i ab_hi = _mm_unpackhi_epi8(r0, r1);
    const __m128i cd_lo = _mm_unpacklo_epi8(r2, r3);
    const __m128i cd_hi = _mm_unpackhi_epi8(r2, r3);
    const __m256i cols0 =
        _mm256_set_m128i(_mm_unpackhi_epi16(ab_lo, cd_lo),
                         _mm_unpacklo_epi16(ab_lo, cd_lo));  // cols j..j+7
    const __m256i cols1 =
        _mm256_set_m128i(_mm_unpackhi_epi16(ab_hi, cd_hi),
                         _mm_unpacklo_epi16(ab_hi, cd_hi));  // cols j+8..j+15
    __m256i* p0 = reinterpret_cast<__m256i*>(acc + j);
    __m256i* p1 = reinterpret_cast<__m256i*>(acc + j + 8);
    _mm256_storeu_si256(
        p0, _mm256_dpbusd_epi32(_mm256_loadu_si256(p0), vmag,
                                _mm256_sign_epi8(cols0, vsign)));
    _mm256_storeu_si256(
        p1, _mm256_dpbusd_epi32(_mm256_loadu_si256(p1), vmag,
                                _mm256_sign_epi8(cols1, vsign)));
  }
  for (; j < n; ++j) {
    acc[j] += x[0] * static_cast<std::int32_t>(rows[0][j]) +
              x[1] * static_cast<std::int32_t>(rows[1][j]) +
              x[2] * static_cast<std::int32_t>(rows[2][j]) +
              x[3] * static_cast<std::int32_t>(rows[3][j]);
  }
}
#endif  // __GNUC__ || __clang__

#elif defined(EDGEDRIFT_SIMD_NEON)

/// acc[0:n] += x * row[0:n], exact int32. 16 codes per step via the
/// widening multiply-accumulate (vmlal): int8 -> int16 -> int32.
EDGEDRIFT_ALWAYS_INLINE void i8_scaled_accumulate(
    std::int32_t x, const std::int8_t* EDGEDRIFT_RESTRICT row,
    std::int32_t* EDGEDRIFT_RESTRICT acc, std::size_t n) {
  const std::int16_t xs = static_cast<std::int16_t>(x);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const int8x16_t r = vld1q_s8(row + j);
    const int16x8_t lo = vmovl_s8(vget_low_s8(r));
    const int16x8_t hi = vmovl_s8(vget_high_s8(r));
    vst1q_s32(acc + j,
              vmlal_n_s16(vld1q_s32(acc + j), vget_low_s16(lo), xs));
    vst1q_s32(acc + j + 4,
              vmlal_n_s16(vld1q_s32(acc + j + 4), vget_high_s16(lo), xs));
    vst1q_s32(acc + j + 8,
              vmlal_n_s16(vld1q_s32(acc + j + 8), vget_low_s16(hi), xs));
    vst1q_s32(acc + j + 12,
              vmlal_n_s16(vld1q_s32(acc + j + 12), vget_high_s16(hi), xs));
  }
  for (; j < n; ++j) acc[j] += x * static_cast<std::int32_t>(row[j]);
}

/// acc[0:n] += x0 * row0[0:n] + x1 * row1[0:n], exact int32. Fuses the
/// per-element pair sum in int16 (|x0*r0 + x1*r1| <= 32258 — no overflow),
/// then widen-adds into the int32 accumulators.
EDGEDRIFT_ALWAYS_INLINE void i8_scaled_accumulate2(
    std::int32_t x0, const std::int8_t* EDGEDRIFT_RESTRICT row0,
    std::int32_t x1, const std::int8_t* EDGEDRIFT_RESTRICT row1,
    std::int32_t* EDGEDRIFT_RESTRICT acc, std::size_t n) {
  const std::int16_t xs0 = static_cast<std::int16_t>(x0);
  const std::int16_t xs1 = static_cast<std::int16_t>(x1);
  std::size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const int8x16_t r0 = vld1q_s8(row0 + j);
    const int8x16_t r1 = vld1q_s8(row1 + j);
    const int16x8_t lo = vmlaq_n_s16(
        vmulq_n_s16(vmovl_s8(vget_low_s8(r0)), xs0),
        vmovl_s8(vget_low_s8(r1)), xs1);
    const int16x8_t hi = vmlaq_n_s16(
        vmulq_n_s16(vmovl_s8(vget_high_s8(r0)), xs0),
        vmovl_s8(vget_high_s8(r1)), xs1);
    vst1q_s32(acc + j, vaddw_s16(vld1q_s32(acc + j), vget_low_s16(lo)));
    vst1q_s32(acc + j + 4,
              vaddw_s16(vld1q_s32(acc + j + 4), vget_high_s16(lo)));
    vst1q_s32(acc + j + 8,
              vaddw_s16(vld1q_s32(acc + j + 8), vget_low_s16(hi)));
    vst1q_s32(acc + j + 12,
              vaddw_s16(vld1q_s32(acc + j + 12), vget_high_s16(hi)));
  }
  for (; j < n; ++j) {
    acc[j] += x0 * static_cast<std::int32_t>(row0[j]) +
              x1 * static_cast<std::int32_t>(row1[j]);
  }
}

#else  // portable: plain loops, exact by definition, autovectorizable.

EDGEDRIFT_ALWAYS_INLINE void i8_scaled_accumulate(
    std::int32_t x, const std::int8_t* EDGEDRIFT_RESTRICT row,
    std::int32_t* EDGEDRIFT_RESTRICT acc, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    acc[j] += x * static_cast<std::int32_t>(row[j]);
  }
}

EDGEDRIFT_ALWAYS_INLINE void i8_scaled_accumulate2(
    std::int32_t x0, const std::int8_t* EDGEDRIFT_RESTRICT row0,
    std::int32_t x1, const std::int8_t* EDGEDRIFT_RESTRICT row1,
    std::int32_t* EDGEDRIFT_RESTRICT acc, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    acc[j] += x0 * static_cast<std::int32_t>(row0[j]) +
              x1 * static_cast<std::int32_t>(row1[j]);
  }
}

#endif

}  // namespace edgedrift::linalg::simd
