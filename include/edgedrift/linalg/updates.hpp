// Incremental inverse updates.
//
// These are the kernels that make OS-ELM "sequential": with training batch
// size fixed to 1 (as the paper does, Section 2.2.1) the covariance inverse
// P is maintained by the Sherman–Morrison identity, eliminating every
// matrix inversion after the initial training phase. The Woodbury block
// variant supports general batch sizes and is used by tests to prove the
// rank-1 path equivalent.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::linalg {

/// Sherman–Morrison: given P = A^-1 (n x n), updates P in place to
/// (A + u v^T)^-1 = P - (P u)(v^T P) / (1 + v^T P u).
/// Returns false (leaving P untouched) when the denominator is ~0, i.e. the
/// update would make A singular.
///
/// The scratch overload is the per-sample hot path: `pu_scratch` and
/// `vtp_scratch` must each have length n and are clobbered. The
/// convenience overload allocates them per call — never use it per sample.
bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v,
                             std::span<double> pu_scratch,
                             std::span<double> vtp_scratch);
bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v);

/// OS-ELM-specialized symmetric rank-1 step with forgetting factor `alpha`:
///   P <- (1/alpha) * [ P - (P h)(h^T P) / (alpha + h^T P h) ]
/// alpha = 1 is the standard OS-ELM update; alpha in (0,1) is the ONLAD
/// forgetting mechanism. `ph_scratch` must have length n and is clobbered.
/// Returns false (leaving P untouched) when P has numerically lost positive
/// definiteness (denominator <= 0 or non-finite) — with alpha < 1 the
/// covariance grows like alpha^-t in unexcited directions, so long streams
/// eventually overflow; callers should reset P to the prior (standard RLS
/// covariance resetting) when this happens.
bool oselm_p_update(Matrix& p, std::span<const double> h, double alpha,
                    std::span<double> ph_scratch);

/// Reusable intermediates of woodbury_update(). Every buffer (including the
/// core factorization's pivot array) grows on first use and is reused
/// across calls, so repeated block updates (OS-ELM train_batch /
/// train_batch_from_hidden) touch the heap zero times once the workspace
/// has reached its high-water shape — reserve() pre-grows it to a known
/// rank so even the first update after Pipeline::fit() is allocation-free.
struct WoodburyWorkspace {
  Matrix pu;                     ///< P U: n x k.
  Matrix core;                   ///< I + V^T P U: k x k (factored in place).
  Matrix vtp;                    ///< V^T P: k x n.
  Matrix core_inv_vtp;           ///< core^-1 V^T P: k x n.
  Matrix delta;                  ///< PU core^-1 V^T P: n x n.
  Matrix w;                      ///< Symmetric path: H P = (P H^T)^T, k x n.
  Matrix m;                      ///< Symmetric path: core^-1 H P, k x n.
  std::vector<std::size_t> piv;  ///< Partial-pivot rows of the core LU.

  /// Pre-grows every buffer for rank-k updates of an n x n inverse.
  void reserve(std::size_t n, std::size_t k) {
    pu.resize_zero(n, k);
    core.resize_zero(k, k);
    vtp.resize_zero(k, n);
    core_inv_vtp.resize_zero(k, n);
    delta.resize_zero(n, n);
    w.resize_zero(k, n);
    m.resize_zero(k, n);
    if (piv.size() < k) piv.resize(k);
  }
};

/// Woodbury identity for a rank-k block update:
///   (A + U V^T)^-1 = P - P U (I + V^T P U)^-1 V^T P,  with P = A^-1.
/// U is n x k, V is n x k. Returns false when the k x k core is singular.
/// The workspace overload reuses `ws` across calls; the convenience
/// overload allocates a fresh workspace per call.
///
/// Equivalence contract with the rank-1 kernels (the chunked-training
/// seam): with k = 1 the identity degenerates to Sherman–Morrison, so
/// woodbury_update(P, u, v) computes exactly the same matrix as
/// sherman_morrison_update(P, u, v) — equal in exact arithmetic, and equal
/// to ~1e-12 relative tolerance in floating point (the two paths order
/// their operations differently: the rank-1 kernel applies one fused ger,
/// the block path runs the tiny LU solve). More generally, a rank-k update
/// with U = V = H^T equals k sequential rank-1 updates with rows of H in
/// exact arithmetic — the property OS-ELM's block recursion is built on and
/// the reason chunked training (OsElm::train_batch_from_hidden) is
/// decision-equivalent, not bit-identical, to the per-sample path.
/// tests/test_chunked_train.cpp pins the k = 1 bound over random shapes.
bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v,
                     WoodburyWorkspace& ws);
bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v);

/// Woodbury rank-k update specialized for the OS-ELM training shape:
/// U = V = H^T with P symmetric (a covariance inverse), taking the chunk's
/// hidden rows H (k x n, row-major — the layout the drain hands over) with
/// no transpose staging:
///   P <- P - W^T (I + H W^T)^-1 W,   W = H P (= (P H^T)^T by symmetry).
/// Evaluated entirely through the per-sample path's lean primitives —
/// k matvecs for W, contiguous dot products for the core, k gers for the
/// P update — because at edge-sized n (tens) a GEMM's per-call packing
/// costs more than the whole update.
///
/// On success `ws.m` holds core^-1 H P = (P_new H^T)^T — the k x n factor
/// the OS-ELM beta update needs (beta += P_new H^T resid), obtained here
/// for free from the identity P_new H^T = P_old H^T core^-1 instead of an
/// n^2 d GEMM at the caller. Returns false (P untouched) when the core is
/// singular. Same equivalence contract as woodbury_update above; the
/// k = 1 degeneration to Sherman–Morrison and the block-vs-sequential
/// bound are pinned by tests/test_chunked_train.cpp.
bool woodbury_update_sym(Matrix& p, const Matrix& h, WoodburyWorkspace& ws);

}  // namespace edgedrift::linalg
