// Incremental inverse updates.
//
// These are the kernels that make OS-ELM "sequential": with training batch
// size fixed to 1 (as the paper does, Section 2.2.1) the covariance inverse
// P is maintained by the Sherman–Morrison identity, eliminating every
// matrix inversion after the initial training phase. The Woodbury block
// variant supports general batch sizes and is used by tests to prove the
// rank-1 path equivalent.
#pragma once

#include <span>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::linalg {

/// Sherman–Morrison: given P = A^-1 (n x n), updates P in place to
/// (A + u v^T)^-1 = P - (P u)(v^T P) / (1 + v^T P u).
/// Returns false (leaving P untouched) when the denominator is ~0, i.e. the
/// update would make A singular.
///
/// The scratch overload is the per-sample hot path: `pu_scratch` and
/// `vtp_scratch` must each have length n and are clobbered. The
/// convenience overload allocates them per call — never use it per sample.
bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v,
                             std::span<double> pu_scratch,
                             std::span<double> vtp_scratch);
bool sherman_morrison_update(Matrix& p, std::span<const double> u,
                             std::span<const double> v);

/// OS-ELM-specialized symmetric rank-1 step with forgetting factor `alpha`:
///   P <- (1/alpha) * [ P - (P h)(h^T P) / (alpha + h^T P h) ]
/// alpha = 1 is the standard OS-ELM update; alpha in (0,1) is the ONLAD
/// forgetting mechanism. `ph_scratch` must have length n and is clobbered.
/// Returns false (leaving P untouched) when P has numerically lost positive
/// definiteness (denominator <= 0 or non-finite) — with alpha < 1 the
/// covariance grows like alpha^-t in unexcited directions, so long streams
/// eventually overflow; callers should reset P to the prior (standard RLS
/// covariance resetting) when this happens.
bool oselm_p_update(Matrix& p, std::span<const double> h, double alpha,
                    std::span<double> ph_scratch);

/// Reusable intermediates of woodbury_update(). Matrices grow on first use
/// and are reused across calls, keeping repeated block updates (OS-ELM
/// train_batch) free of per-call GEMM-output allocations.
struct WoodburyWorkspace {
  Matrix pu;            ///< P U: n x k.
  Matrix core;          ///< I + V^T P U: k x k.
  Matrix vtp;           ///< V^T P: k x n.
  Matrix core_inv_vtp;  ///< core^-1 V^T P: k x n.
  Matrix delta;         ///< PU core^-1 V^T P: n x n.
};

/// Woodbury identity for a rank-k block update:
///   (A + U V^T)^-1 = P - P U (I + V^T P U)^-1 V^T P,  with P = A^-1.
/// U is n x k, V is n x k. Returns false when the k x k core is singular.
/// The workspace overload reuses `ws` across calls; the convenience
/// overload allocates a fresh workspace per call.
bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v,
                     WoodburyWorkspace& ws);
bool woodbury_update(Matrix& p, const Matrix& u, const Matrix& v);

}  // namespace edgedrift::linalg
