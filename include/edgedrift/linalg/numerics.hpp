// The tiered numerics contract (docs/ARCHITECTURE.md, "Tiered numerics
// contract").
//
// The library's original policy was bit-identity everywhere: every scoring
// path had to round exactly like the scalar double reference. That policy
// made the fused ensemble kernels provable, but it also blocked every
// approximate kernel — and the [L x C*n] ensemble-scoring hot path is
// memory-bandwidth-bound, so halving or quartering the bytes moved is the
// single biggest lever left. The contract is therefore split into tiers:
//
//   kExactF64  The retained reference path. Bit-identity is preserved:
//              process()==process_batch(), fused==per-instance, and the
//              committed golden replay transcript must match bit-for-bit
//              on the portable SIMD backend. Nothing about this tier may
//              change without regenerating the golden files.
//
//   kFastF32   Scoring reads a float32 shadow replica of the packed
//              ensemble beta. Guarantee: error-bounded drift-decision
//              equivalence — on the committed golden scenarios, detection
//              times, drift counts and recovery outcomes match the f64
//              reference within the tier's declared tolerance budget
//              (eval/tier_equivalence.hpp). Per-score error is O(2^-24)
//              relative; training stays f64.
//
//   kQuantI8   Scoring reads an int8 replica with per-column float scales
//              (symmetric, zero-point 0). Same drift-decision-equivalence
//              guarantee with a wider budget; per-weight error is bounded
//              by scale/2 = max|w_col| / 254. Training stays f64 and the
//              replica is re-quantized from the f64 master after every
//              beta mutation (the quantization-epoch discipline in
//              model/multi_instance.hpp).
//
// Training (init solves, the P-matrix Sherman–Morrison recursion) is f64 in
// every tier: the recursion is numerically delicate and its state is tiny
// next to the packed ensemble beta, so quantizing it buys little and risks
// divergence.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace edgedrift::linalg {

/// Which numerics tier the scoring hot path runs in.
enum class NumericsTier : std::uint8_t {
  kExactF64 = 0,  ///< Bit-identical double reference path.
  kFastF32 = 1,   ///< float32 packed-beta replica, error-bounded.
  kQuantI8 = 2,   ///< int8 + per-column-scale replica, error-bounded.
};

/// Canonical short name ("f64", "f32", "i8") — used by the CLI, the bench
/// JSON `precision` field and checkpoint error messages.
constexpr const char* tier_name(NumericsTier tier) {
  switch (tier) {
    case NumericsTier::kFastF32:
      return "f32";
    case NumericsTier::kQuantI8:
      return "i8";
    case NumericsTier::kExactF64:
    default:
      return "f64";
  }
}

/// Parses a tier name as accepted by `--numerics` (f64 | f32 | i8).
inline std::optional<NumericsTier> tier_from_name(std::string_view name) {
  if (name == "f64") return NumericsTier::kExactF64;
  if (name == "f32") return NumericsTier::kFastF32;
  if (name == "i8") return NumericsTier::kQuantI8;
  return std::nullopt;
}

/// Bytes per element of the packed-beta replica a tier reads.
constexpr std::size_t tier_element_bytes(NumericsTier tier) {
  switch (tier) {
    case NumericsTier::kFastF32:
      return 4;
    case NumericsTier::kQuantI8:
      return 1;
    case NumericsTier::kExactF64:
    default:
      return 8;
  }
}

}  // namespace edgedrift::linalg
