// int8 quantization layer — the kQuantI8 tier's replica format and kernels
// (linalg/numerics.hpp).
//
// Scheme: symmetric per-column linear quantization, zero-point 0. For each
// column j of an f64 master W the scale is
//
//   scale[j] = max_i |W[i][j]| / 127        (0 when the column is all-zero)
//   q[i][j]  = round(W[i][j] / scale[j])    clamped to [-127, 127]
//
// so dequantization is q * scale with per-weight error bounded by
// scale[j] / 2 = max_i |W[i][j]| / 254. -128 is never produced: the clamp
// keeps the code domain symmetric, which makes |error| <= scale/2 hold at
// both extremes and leaves q = -q valid (no UB-adjacent negation edge).
//
// The scoring kernels quantize the activation vector dynamically (per
// vector / per row, symmetric as above), accumulate the integer dot product
// in int32 — exact: 2^16 terms x 127^2 < 2^31 — and apply the combined
// float scale once per output. Accumulation order therefore does not round
// at all until the final dequant multiply; the tier's error is entirely the
// two quantization grids.
//
// Column blocks: the packed ensemble beta is [L x C*n] with instance c
// owning columns [c*n, (c+1)*n). QuantizedMatrix quantizes per column, so a
// block can be re-quantized in isolation (quantize_block) when one
// instance's master beta mutates — the quantization-epoch discipline in
// model/multi_instance.cpp.
#pragma once

#include <cstdint>
#include <span>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::linalg {

/// int8 replica of an f64 matrix: packed codes plus one float scale per
/// column (symmetric, zero-point 0).
struct QuantizedMatrix {
  MatrixI8 q;                   ///< Codes in [-127, 127], row-major.
  AlignedVector<float> scales;  ///< One scale per column; 0 for zero columns.

  std::size_t rows() const { return q.rows(); }
  std::size_t cols() const { return q.cols(); }

  /// Dequantized value at (r, c) — test/debug accessor, not a kernel.
  float dequant(std::size_t r, std::size_t c) const {
    return static_cast<float>(q(r, c)) * scales[c];
  }

  /// Heap bytes of the replica (codes + scales) — the stream-density
  /// numerator of the i8 tier.
  std::size_t memory_bytes() const {
    return q.memory_bytes() + scales.capacity() * sizeof(float);
  }
};

/// Quantizes all of `src` into `out` (resized; grow-only storage).
void quantize(const Matrix& src, QuantizedMatrix& out);

/// Re-quantizes columns [col_begin, col_begin + width) of `src` into the
/// matching columns of `out`, recomputing those columns' scales. `out` must
/// already have src's shape. The per-block refresh of the packed-beta
/// replica.
void quantize_block(const Matrix& src, QuantizedMatrix& out,
                    std::size_t col_begin, std::size_t width);

/// Symmetric per-vector quantization of an activation vector: returns the
/// scale (max|x|/127, 0 for an all-zero vector) and fills `q` with codes in
/// [-127, 127]. Allocation-free; q.size() == x.size().
float quantize_vector(std::span<const double> x, std::span<std::int8_t> q);

/// float-input overload (the batch path quantizes narrowed f32 rows).
float quantize_vector(std::span<const float> x, std::span<std::int8_t> q);

/// y[j] = (sum_i q_x[i] * A.q[i][j]) * x_scale * A.scales[j] — the i8 twin
/// of matvec_transposed (y = A^T x, shapes [m,n]^T x [m] -> [n]). The inner
/// sum is exact int32; `acc` is caller scratch of length >= n.
void i8_matvec_transposed_dequant(const QuantizedMatrix& a,
                                  std::span<const std::int8_t> q_x,
                                  float x_scale, std::span<std::int32_t> acc,
                                  std::span<float> y);

/// C = A * B with per-row dynamic quantization of A (f32 rows) against the
/// static per-column replica B. C is resized and fully overwritten; q_row
/// and acc are caller scratch (length >= A.cols() and B.cols()). Row r uses
/// scale_r = max_j |A[r][j]| / 127, so C[r][j] carries error from both
/// grids; the tier equivalence harness owns the budget.
void i8_gemm_dequant(ConstMatrixViewT<float> a, const QuantizedMatrix& b,
                     MatrixF32& c, std::span<std::int8_t> q_row,
                     std::span<std::int32_t> acc);

}  // namespace edgedrift::linalg
