// Dense row-major matrix type used throughout edgedrift.
//
// The library deliberately carries its own small linear-algebra substrate
// instead of depending on Eigen/BLAS: the paper's target is a
// microcontroller-class device where the entire numeric kernel must be
// auditable and allocation-free on the hot path. Matrix is the storage and
// shape layer; compute kernels live in gemm.hpp / solve.hpp / updates.hpp.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Builds from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    EDGEDRIFT_DASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    EDGEDRIFT_DASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Mutable view of row r.
  std::span<double> row(std::size_t r) {
    EDGEDRIFT_DASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  /// Const view of row r.
  std::span<const double> row(std::size_t r) const {
    EDGEDRIFT_DASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Flat view over all elements in row-major order.
  std::span<double> flat() { return {data_.data(), data_.size()}; }
  std::span<const double> flat() const { return {data_.data(), data_.size()}; }

  /// Resizes to rows x cols, zeroing all content. Grow-only on the heap:
  /// shrinking or re-sizing within the high-water capacity never
  /// reallocates, so workspace matrices stay allocation-free across
  /// varying batch shapes.
  void resize_zero(std::size_t rows, std::size_t cols);

  /// resize_zero without the zeroing pass: element values are unspecified
  /// until written. For outputs a kernel fully overwrites (the GEMM entry
  /// points), skipping the memset keeps the hot path from writing every
  /// workspace byte twice. Same grow-only allocation guarantee.
  void resize_discard(std::size_t rows, std::size_t cols);

  /// Sets every element to `value`.
  void fill(double value);

  /// Copies `src` (length cols()) into row r.
  void set_row(std::size_t r, std::span<const double> src);

  /// Returns the transpose.
  Matrix transposed() const;

  /// Copies rows [begin, end) into a new matrix.
  Matrix slice_rows(std::size_t begin, std::size_t end) const;

  /// In-place element-wise operations.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double scalar) { return lhs *= scalar; }
  friend Matrix operator*(double scalar, Matrix rhs) { return rhs *= scalar; }

  /// Max |a_ij - b_ij|; matrices must have identical shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// rows x cols with iid U(lo, hi) entries drawn from `rng`.
  static Matrix random_uniform(std::size_t rows, std::size_t cols,
                               util::Rng& rng, double lo = -1.0,
                               double hi = 1.0);

  /// rows x cols with iid N(0, stddev^2) entries drawn from `rng`.
  static Matrix random_gaussian(std::size_t rows, std::size_t cols,
                                util::Rng& rng, double stddev = 1.0);

  /// Heap bytes held by this matrix (the Table 4 memory audit counts these).
  std::size_t memory_bytes() const { return data_.capacity() * sizeof(double); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning const view of a contiguous row-major block — the zero-copy
/// operand for batch kernels reading rows straight out of a larger matrix
/// (a PipelineManager ring slab, a chunk of a dataset). Converts implicitly
/// from Matrix; the viewed storage must outlive the view.
class ConstMatrixView {
 public:
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  /// Rows [row_begin, row_end) of m — contiguous by row-major layout.
  ConstMatrixView(const Matrix& m, std::size_t row_begin, std::size_t row_end)
      : data_(m.data() + row_begin * m.cols()),
        rows_(row_end - row_begin),
        cols_(m.cols()) {
    EDGEDRIFT_DASSERT(row_begin <= row_end && row_end <= m.rows(),
                      "view row range out of bounds");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const double* data() const { return data_; }

  double operator()(std::size_t r, std::size_t c) const {
    EDGEDRIFT_DASSERT(r < rows_ && c < cols_, "view index out of range");
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const {
    EDGEDRIFT_DASSERT(r < rows_, "view row index out of range");
    return {data_ + r * cols_, cols_};
  }

 private:
  const double* data_;
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace edgedrift::linalg
