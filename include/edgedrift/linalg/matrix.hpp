// Dense row-major matrix type used throughout edgedrift.
//
// The library deliberately carries its own small linear-algebra substrate
// instead of depending on Eigen/BLAS: the paper's target is a
// microcontroller-class device where the entire numeric kernel must be
// auditable and allocation-free on the hot path. Matrix is the storage and
// shape layer; compute kernels live in gemm.hpp / solve.hpp / updates.hpp.
//
// Since the tiered-numerics refactor the storage layer is precision-generic:
// MatrixT<T> carries the shape/ownership logic once, and the library
// instantiates it for the three tier scalars — double (the exact reference
// tier), float (the f32 scoring tier) and int8 (the quantized tier's packed
// payload; see linalg/quant.hpp for the scales that give those bytes
// meaning). `Matrix` remains the double alias every existing call site uses.
//
// All heap blocks are 64-byte aligned (AlignedAllocator below): one cache
// line, and wide enough for any current SIMD vector, so the f32/int8 kernels
// can assume aligned row starts when rows are padded and never split a
// vector across lines on the common unpadded shapes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <new>
#include <span>
#include <vector>

#include "edgedrift/util/assert.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::linalg {

/// Alignment of every Matrix/ring-slab heap block: one cache line, and a
/// superset of any SIMD vector alignment the kernel layer uses.
inline constexpr std::size_t kMatrixAlignment = 64;

/// Minimal std::allocator replacement handing out kMatrixAlignment-aligned
/// blocks via the aligned operator new (which does NOT route through the
/// plain replaceable operator new — the allocation-counting test hooks
/// replace only the plain forms, and aligned new/delete stay paired).
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kMatrixAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kMatrixAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// 64-byte-aligned grow-only vector — also the storage of the quantized
/// replica's scale arrays and the workspaces' typed scratch.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` sits on a kMatrixAlignment boundary (debug asserts).
inline bool is_matrix_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kMatrixAlignment == 0;
}

/// Dense row-major matrix over scalar type T.
template <typename T>
class MatrixT {
 public:
  using value_type = T;

  /// Empty 0x0 matrix.
  MatrixT() = default;

  /// rows x cols matrix, zero-initialized.
  MatrixT(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {
    assert_aligned();
  }

  /// rows x cols matrix with every element set to `fill`.
  MatrixT(std::size_t rows, std::size_t cols, T fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    assert_aligned();
  }

  /// Builds from nested initializer lists: Matrix{{1,2},{3,4}}.
  MatrixT(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      EDGEDRIFT_ASSERT(row.size() == cols_, "ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
    assert_aligned();
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    EDGEDRIFT_DASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  T operator()(std::size_t r, std::size_t c) const {
    EDGEDRIFT_DASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Mutable view of row r.
  std::span<T> row(std::size_t r) {
    EDGEDRIFT_DASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  /// Const view of row r.
  std::span<const T> row(std::size_t r) const {
    EDGEDRIFT_DASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Flat view over all elements in row-major order.
  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  /// Resizes to rows x cols, zeroing all content. Grow-only on the heap:
  /// shrinking or re-sizing within the high-water capacity never
  /// reallocates, so workspace matrices stay allocation-free across
  /// varying batch shapes.
  void resize_zero(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    const std::size_t n = rows * cols;
    // Grow-only: once a workspace matrix has reached its high-water
    // capacity, repeat batches of any size up to it must not touch the heap
    // (the batch scoring loop relies on this; pinned by
    // tests/test_allocation_free.cpp). vector::resize never reallocates
    // when n <= capacity; assign() makes no such guarantee, so it is only
    // used on genuine growth.
    if (n <= data_.capacity()) {
      data_.resize(n);
      std::fill(data_.begin(), data_.end(), T{});
    } else {
      data_.assign(n, T{});
    }
    assert_aligned();
  }

  /// resize_zero without the zeroing pass: element values are unspecified
  /// until written. For outputs a kernel fully overwrites (the GEMM entry
  /// points), skipping the memset keeps the hot path from writing every
  /// workspace byte twice. Same grow-only allocation guarantee.
  void resize_discard(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    // Newly exposed elements keep whatever value the storage held (zero
    // only on genuine growth, where vector::resize value-initializes).
    data_.resize(rows * cols);
    assert_aligned();
  }

  /// Sets every element to `value`.
  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Copies `src` (length cols()) into row r.
  void set_row(std::size_t r, std::span<const T> src) {
    EDGEDRIFT_ASSERT(r < rows_, "row index out of range");
    EDGEDRIFT_ASSERT(src.size() == cols_, "row length mismatch");
    std::copy(src.begin(), src.end(), data_.begin() + r * cols_);
  }

  /// Returns the transpose.
  MatrixT transposed() const {
    MatrixT out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        out(c, r) = (*this)(r, c);
      }
    }
    return out;
  }

  /// Copies rows [begin, end) into a new matrix.
  MatrixT slice_rows(std::size_t begin, std::size_t end) const {
    EDGEDRIFT_ASSERT(begin <= end && end <= rows_, "slice_rows out of range");
    MatrixT out(end - begin, cols_);
    std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
              out.data_.begin());
    return out;
  }

  /// In-place element-wise operations.
  MatrixT& operator+=(const MatrixT& other) {
    EDGEDRIFT_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                     "shape mismatch in +=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }
  MatrixT& operator-=(const MatrixT& other) {
    EDGEDRIFT_ASSERT(rows_ == other.rows_ && cols_ == other.cols_,
                     "shape mismatch in -=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
  }
  MatrixT& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  friend MatrixT operator+(MatrixT lhs, const MatrixT& rhs) {
    return lhs += rhs;
  }
  friend MatrixT operator-(MatrixT lhs, const MatrixT& rhs) {
    return lhs -= rhs;
  }
  friend MatrixT operator*(MatrixT lhs, T scalar) { return lhs *= scalar; }
  friend MatrixT operator*(T scalar, MatrixT rhs) { return rhs *= scalar; }

  /// Max |a_ij - b_ij|; matrices must have identical shape.
  static double max_abs_diff(const MatrixT& a, const MatrixT& b) {
    EDGEDRIFT_ASSERT(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                     "shape mismatch in max_abs_diff");
    double worst = 0.0;
    for (std::size_t i = 0; i < a.data_.size(); ++i) {
      const double d = static_cast<double>(a.data_[i]) -
                       static_cast<double>(b.data_[i]);
      const double mag = d < 0.0 ? -d : d;
      if (mag > worst) worst = mag;
    }
    return worst;
  }

  /// n x n identity.
  static MatrixT identity(std::size_t n) {
    MatrixT out(n, n);
    for (std::size_t i = 0; i < n; ++i) out(i, i) = T{1};
    return out;
  }

  /// rows x cols with iid U(lo, hi) entries drawn from `rng`. Defined in
  /// matrix.cpp (needs util::Rng); available for the explicitly
  /// instantiated scalar types below.
  static MatrixT random_uniform(std::size_t rows, std::size_t cols,
                                util::Rng& rng, double lo = -1.0,
                                double hi = 1.0);

  /// rows x cols with iid N(0, stddev^2) entries drawn from `rng`.
  static MatrixT random_gaussian(std::size_t rows, std::size_t cols,
                                 util::Rng& rng, double stddev = 1.0);

  /// Heap bytes held by this matrix (the Table 4 memory audit counts these).
  std::size_t memory_bytes() const { return data_.capacity() * sizeof(T); }

 private:
  void assert_aligned() const {
    EDGEDRIFT_DASSERT(data_.empty() || is_matrix_aligned(data_.data()),
                      "matrix storage lost its 64-byte alignment");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector<T> data_;
};

/// The exact-tier (and default) matrix of the library.
using Matrix = MatrixT<double>;
/// f32 scoring-tier shadow storage.
using MatrixF32 = MatrixT<float>;
/// int8 quantized-tier packed payload (scales live in linalg/quant.hpp).
using MatrixI8 = MatrixT<std::int8_t>;

// The three tier scalars are instantiated once in matrix.cpp.
extern template class MatrixT<double>;
extern template class MatrixT<float>;
extern template class MatrixT<std::int8_t>;

/// Non-owning const view of a contiguous row-major block — the zero-copy
/// operand for batch kernels reading rows straight out of a larger matrix
/// (a PipelineManager ring slab, a chunk of a dataset). Converts implicitly
/// from MatrixT; the viewed storage must outlive the view.
template <typename T>
class ConstMatrixViewT {
 public:
  using value_type = T;

  ConstMatrixViewT(const MatrixT<T>& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  /// Rows [row_begin, row_end) of m — contiguous by row-major layout.
  ConstMatrixViewT(const MatrixT<T>& m, std::size_t row_begin,
                   std::size_t row_end)
      : data_(m.data() + row_begin * m.cols()),
        rows_(row_end - row_begin),
        cols_(m.cols()) {
    EDGEDRIFT_DASSERT(row_begin <= row_end && row_end <= m.rows(),
                      "view row range out of bounds");
  }

  /// The first `rows` rows of an existing view (chunk-prefix narrowing).
  ConstMatrixViewT(const ConstMatrixViewT& v, std::size_t rows)
      : data_(v.data_), rows_(rows), cols_(v.cols_) {
    EDGEDRIFT_DASSERT(rows <= v.rows_, "view prefix out of bounds");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const T* data() const { return data_; }

  T operator()(std::size_t r, std::size_t c) const {
    EDGEDRIFT_DASSERT(r < rows_ && c < cols_, "view index out of range");
    return data_[r * cols_ + c];
  }

  std::span<const T> row(std::size_t r) const {
    EDGEDRIFT_DASSERT(r < rows_, "view row index out of range");
    return {data_ + r * cols_, cols_};
  }

 private:
  const T* data_;
  std::size_t rows_;
  std::size_t cols_;
};

using ConstMatrixView = ConstMatrixViewT<double>;

}  // namespace edgedrift::linalg
