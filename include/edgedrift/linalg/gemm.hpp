// Matrix-multiply kernels. The blocked kernel is cache-tiled; the threaded
// variant splits output rows across the global thread pool and is used only
// by the batch paths (initial ELM training, baseline batch detectors).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::linalg {

/// Reusable packed-panel cache for a B operand that is multiplied many
/// times against small row blocks — e.g. the serving layer's coalesced
/// drain projecting thousands of mega-batches through one immutable random
/// projection. pack_gemm_b() builds exactly the panel layout the per-call
/// GEMM path packs internally, so matmul_packed_parallel_into() produces
/// bit-identical results to matmul_parallel_into() while skipping the
/// per-call pack of B.
struct PackedGemmB {
  std::vector<double> panels;
  std::size_t rows = 0;  ///< k of the packed B.
  std::size_t cols = 0;  ///< n of the packed B.
};

/// Packs B's column panels into `out` (grow-only; reusable across calls).
void pack_gemm_b(const Matrix& b, PackedGemmB& out);

/// matmul_parallel_into() with B's panels supplied by a prior
/// pack_gemm_b(b, packed). `b` must be the same matrix that was packed —
/// the kernel still reads B directly for the final n % kLanes columns.
void matmul_packed_parallel_into(ConstMatrixView a, const Matrix& b,
                                 const PackedGemmB& packed, Matrix& c);

/// C = A * B (shapes: [m,k] x [k,n] -> [m,n]). Cache-blocked single-thread.
/// A is a row-block view, so callers can multiply a contiguous row range of
/// a larger matrix without copying it out (Matrix converts implicitly).
Matrix matmul(ConstMatrixView a, const Matrix& b);

/// C = A^T * B without materializing A^T.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// matmul_at_b into a caller-provided matrix (resized if needed).
void matmul_at_b_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A * B^T without materializing B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// C = A * B using the global thread pool for large problems.
Matrix matmul_parallel(const Matrix& a, const Matrix& b);

/// C = A * B into a caller-provided matrix (resized if needed). The
/// allocation-free variant the batch scoring hot path uses with
/// preallocated workspaces; per-element results are bit-identical to
/// matmul(). C is fully overwritten — the kernels seed their accumulators
/// at zero, so no pre-zeroing pass runs over the output.
void matmul_into(ConstMatrixView a, const Matrix& b, Matrix& c);

/// matmul_into with the global thread pool for large problems. Row-
/// partitioned, so per-element results stay bit-identical to matmul().
void matmul_parallel_into(ConstMatrixView a, const Matrix& b, Matrix& c);

/// y = A * x (shapes: [m,n] x [n] -> [m]). `y` must have length m.
void matvec(const Matrix& a, std::span<const double> x, std::span<double> y);

/// y = A^T * x (shapes: [m,n]^T x [m] -> [n]). `y` must have length n.
void matvec_transposed(const Matrix& a, std::span<const double> x,
                       std::span<double> y);

/// f32-tier y = A^T * x (shapes: [m,n]^T x [m] -> [n]). Same ascending-row
/// accumulation shape as the f64 overload, on the float lane set; lives
/// outside the bit-identity contract (error-bounded tier).
void matvec_transposed(const MatrixF32& a, std::span<const float> x,
                       std::span<float> y);

/// f32-tier C = A * B into caller storage (resized, fully overwritten).
/// Row-streamed scaled-accumulate kernel: with the ensemble-scoring shapes
/// (k = hidden_dim ~ 22, B a few tens of KB) B stays cache-resident, so the
/// win over f64 is the halved bandwidth, not a fancier tiling.
void matmul_into(ConstMatrixViewT<float> a, const MatrixF32& b, MatrixF32& c);

/// f32 matmul_into with the global thread pool for large problems.
void matmul_parallel_into(ConstMatrixViewT<float> a, const MatrixF32& b,
                          MatrixF32& c);

/// Rank-1 update A += alpha * u * v^T (u length rows, v length cols).
void ger(Matrix& a, double alpha, std::span<const double> u,
         std::span<const double> v);

/// Rank-1 update of a column block: A[:, col_begin : col_begin + v.size())
/// += alpha * u * v^T. Per element this is the same madd as ger() on a
/// dense matrix of the block's shape, so a column block updated through
/// ger_block stays bit-identical to a standalone matrix updated through
/// ger() with the same vectors — the invariant the packed ensemble beta
/// relies on (model/multi_instance.cpp).
void ger_block(Matrix& a, std::size_t col_begin, double alpha,
               std::span<const double> u, std::span<const double> v);

}  // namespace edgedrift::linalg
