// Span-based vector kernels. These are the distance/accumulation primitives
// the sequential detector runs per sample, so they are kept allocation-free.
#pragma once

#include <cstddef>
#include <span>

namespace edgedrift::linalg {

/// Dot product of equally sized spans.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// Sum of |a_i|.
double norm1(std::span<const double> a);

/// L2 distance between two points.
double l2_distance(std::span<const double> a, std::span<const double> b);

/// Squared L2 distance (no sqrt; used in argmin loops).
double squared_l2_distance(std::span<const double> a,
                           std::span<const double> b);

/// f32-tier squared L2 distance: float lane set, float accumulators. Used
/// by the tiered scoring paths; error-bounded, not bit-comparable to the
/// double overload.
float squared_l2_distance(std::span<const float> a, std::span<const float> b);

/// dst[i] = (float)src[i] — the f64 -> f32 tier boundary crossing (hidden
/// activations, probe rows). Sizes must match.
void narrow(std::span<const double> src, std::span<float> dst);

/// L1 (Manhattan) distance — the metric of the paper's Algorithm 1 line 14.
double l1_distance(std::span<const double> a, std::span<const double> b);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// dst = src.
void copy(std::span<const double> src, std::span<double> dst);

/// Sets every element of `v` to `value`.
void fill(std::span<double> v, double value);

/// Running-mean update: mean = (mean * count + x) / (count + 1), the
/// sequential centroid update of Algorithm 1 line 12 / Algorithm 4 line 3.
void running_mean_update(std::span<double> mean, std::span<const double> x,
                         std::size_t count);

/// Exponentially weighted mean update: mean = decay*mean + (1-decay)*x.
/// The paper notes newer samples may be weighted higher when forming the
/// "recent" test centroids; this is that variant.
void ewma_update(std::span<double> mean, std::span<const double> x,
                 double decay);

/// Mean of `v`.
double mean(std::span<const double> v);

/// Population standard deviation of `v` (the paper's Eq. 1 uses 1/N).
double stddev_population(std::span<const double> v);

}  // namespace edgedrift::linalg
