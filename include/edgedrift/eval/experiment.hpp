// Experiment runner for the five method combinations of the paper's
// Section 4.2:
//   1. proposed detector        + OS-ELM multi-instance model   (active)
//   2. no detector ("baseline") + OS-ELM multi-instance model
//   3. QuantTree                + OS-ELM multi-instance model   (active)
//   4. SPLL                     + OS-ELM multi-instance model   (active)
//   5. no detector              + ONLAD (forgetting OS-ELM)     (passive)
//
// All five share the same initial training; the runner walks a test stream
// sample by sample, records per-sample correctness (Figure 4 / Table 2),
// detection indices (delay columns), wall-clock time (Table 5) and
// component memory (Table 4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"
#include "edgedrift/eval/metrics.hpp"

namespace edgedrift::eval {

/// The five evaluated method combinations plus the ensemble extension.
enum class Method {
  kProposed,     ///< Centroid detector + reconstruction.
  kBaseline,     ///< Static model, no detection.
  kQuantTree,    ///< QuantTree batch detector + reconstruction.
  kSpll,         ///< SPLL batch detector + reconstruction.
  kOnlad,        ///< Passive: forgetting OS-ELM trained on every sample.
  kMultiWindow,  ///< Extension: multi-window centroid ensemble (paper §6).
};

std::string method_name(Method method);

/// Shared experiment configuration.
struct ExperimentConfig {
  core::PipelineConfig pipeline;     ///< Model + proposed-detector settings.
  drift::QuantTreeConfig quanttree;
  drift::SpllConfig spll;
  double onlad_forgetting = 0.97;    ///< Paper: 0.97 (NSL-KDD) / 0.99 (fan).
  /// Member window sizes of the kMultiWindow ensemble.
  std::vector<std::size_t> ensemble_windows{50, 100, 200};
  std::uint64_t seed = 1;
};

/// Everything the paper's tables need from one run.
struct ExperimentResult {
  Method method;
  StreamingAccuracy accuracy;   ///< Per-sample correctness.
  DetectionLog detections;      ///< Sample indices where drift fired.
  double runtime_seconds = 0.0; ///< Wall clock of the streaming loop.
  std::size_t detector_memory_bytes = 0;
  std::size_t model_memory_bytes = 0;
};

/// Runs one method over (train, test). The test stream's labels are used
/// only for accuracy accounting, never by the methods themselves.
ExperimentResult run_experiment(Method method, const data::Dataset& train,
                                const data::Dataset& test,
                                const ExperimentConfig& config);

}  // namespace edgedrift::eval
