// Byte-level memory accounting for the Table 4 comparison. Components
// self-report via memory_bytes(); the audit aggregates and renders them.
// Unlike the paper's process-level measurement on the Pi 4 this is an exact
// count of algorithm state, which is the quantity the comparison is about.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace edgedrift::eval {

/// Named component-size ledger.
class MemoryAudit {
 public:
  void add(std::string component, std::size_t bytes);

  std::size_t total_bytes() const;

  /// Renders a two-column table (component, size in kB) plus a total row.
  std::string table() const;

  struct Entry {
    std::string component;
    std::size_t bytes;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

}  // namespace edgedrift::eval
