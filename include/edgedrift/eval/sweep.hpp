// Scenario sweep harness: runs drift detectors across a grid of compiled
// scenarios and scores every (scenario, detector) cell against the
// scenario's ground-truth annotations.
//
// A cell replays the scenario's stream through the detect-and-retrain
// Pipeline — or, when the scenario's TrafficSpec spreads arrivals over
// more than one stream, through the sharded PipelineManager serving layer
// under the spec's arrival pattern (submit_batch per shaped tick, then
// drain + take_steps mapped back to global stream indices). Either way
// the cell yields detection indices + per-sample correctness, scored by
// eval::score_scenario into delay / false-alarm / recovery-accuracy
// numbers, plus wall-clock throughput.
//
// sweep_json() renders the matrix as the versioned "edgedrift-eval-v1"
// document committed as EVAL_scenarios.json and gated in CI
// (tools/check_sweep_sanity.py).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/scenario.hpp"
#include "edgedrift/drift/detector_factory.hpp"
#include "edgedrift/eval/scenario_metrics.hpp"

namespace edgedrift::eval {

/// The default cell pipeline: the paper experiment settings (responsive
/// recent centroids via initial_count 0, the tight theta_error_z = 4 gate)
/// rather than the raw PipelineConfig defaults.
core::PipelineConfig default_sweep_pipeline();

/// Per-cell run configuration. `pipeline` is a template: input_dim,
/// num_labels and detector.kind are overwritten per cell from the
/// scenario and the swept detector.
struct SweepCellConfig {
  core::PipelineConfig pipeline = default_sweep_pipeline();
  ScenarioMetricsConfig metrics;
  /// Serving shards of the PipelineManager replay path (TrafficSpec with
  /// streams > 1).
  std::size_t manager_shards = 2;
};

/// One (scenario, detector) cell of the matrix.
struct SweepCell {
  std::string scenario;
  drift::DetectorKind kind = drift::DetectorKind::kCentroid;
  bool via_manager = false;   ///< Replayed through PipelineManager.
  std::size_t streams = 1;    ///< Managed streams of the replay.
  double calibrated_hellinger = 0.0;  ///< The scenario's measuring stick.
  ScenarioMetrics metrics;
  /// Global stream indices where the detector fired (merged across
  /// managed streams on the manager path), sorted.
  std::vector<std::size_t> detections;
  double runtime_seconds = 0.0;       ///< Streaming loop wall clock.
  double throughput_rows_per_s = 0.0;
};

/// Runs one detector over one compiled scenario.
SweepCell run_sweep_cell(const data::CompiledScenario& scenario,
                         drift::DetectorKind kind,
                         const SweepCellConfig& config = {});

/// The full matrix, cells ordered scenario-major in the given order.
struct SweepResult {
  std::vector<SweepCell> cells;
};

/// Compiles each spec once and runs every detector kind over it.
SweepResult run_sweep(std::span<const data::ScenarioSpec> specs,
                      std::span<const drift::DetectorKind> kinds,
                      const SweepCellConfig& config = {});

/// Renders the matrix as the versioned "edgedrift-eval-v1" JSON document.
std::string sweep_json(const SweepResult& result);

}  // namespace edgedrift::eval
