// Streaming evaluation metrics: accuracy over time (Figure 4), final
// accuracy and detection delay (Table 2), window-size-vs-delay (Table 3).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace edgedrift::eval {

/// Records per-sample correctness and derives overall / windowed accuracy.
class StreamingAccuracy {
 public:
  void record(bool correct) { correct_.push_back(correct); }

  std::size_t samples() const { return correct_.size(); }

  /// Fraction correct over the whole stream.
  double overall() const;

  /// Fraction correct over [begin, end).
  double range(std::size_t begin, std::size_t end) const;

  /// Non-overlapping windowed accuracy series (the Figure 4 curve): one
  /// value per full window of `window` samples.
  std::vector<double> windowed(std::size_t window) const;

  const std::vector<bool>& raw() const { return correct_; }

  void clear() { correct_.clear(); }

 private:
  std::vector<bool> correct_;
};

/// Records the sample indices where a detector fired and derives the delay
/// and false-alarm statistics the paper reports.
class DetectionLog {
 public:
  void record(std::size_t sample_index) { detections_.push_back(sample_index); }

  const std::vector<std::size_t>& detections() const { return detections_; }
  std::size_t count() const { return detections_.size(); }

  /// Samples between the true drift point and the first detection at or
  /// after it; nullopt when the drift was never detected. This is the
  /// "delay" column of Tables 2 and 3.
  std::optional<std::size_t> delay(std::size_t drift_at) const;

  /// Detections strictly before the true drift point (false alarms).
  std::size_t false_alarms(std::size_t drift_at) const;

  void clear() { detections_.clear(); }

 private:
  std::vector<std::size_t> detections_;
};

/// Greedy label alignment: maps predicted cluster labels onto true labels
/// maximizing agreement (used when reconstruction relabels clusters).
/// Returns accuracy under the best bijective mapping for small C.
double best_mapped_accuracy(const std::vector<int>& predicted,
                            const std::vector<int>& truth,
                            std::size_t num_labels);

/// Prequential (test-then-train) accuracy with an exponential fading
/// factor — the standard streaming-evaluation metric (Gama et al.):
///   S_t = correct_t + alpha * S_{t-1},  N_t = 1 + alpha * N_{t-1},
///   accuracy_t = S_t / N_t.
/// alpha = 1 recovers the running mean; alpha < 1 emphasizes the recent
/// past, which is what one wants around concept drifts.
class PrequentialAccuracy {
 public:
  explicit PrequentialAccuracy(double fading_factor = 0.999);

  /// Records one test-then-train outcome and returns the current estimate.
  double record(bool correct);

  double value() const;
  std::size_t samples() const { return samples_; }
  double fading_factor() const { return fading_factor_; }
  void reset();

 private:
  double fading_factor_;
  double weighted_correct_ = 0.0;
  double weighted_count_ = 0.0;
  std::size_t samples_ = 0;
};

}  // namespace edgedrift::eval
