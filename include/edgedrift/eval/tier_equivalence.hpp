// Drift-decision equivalence harness for the tiered numerics contract
// (linalg/numerics.hpp).
//
// The fp32 and int8 scoring tiers trade score precision for throughput and
// stream density; what they must NOT trade away is the pipeline's
// *decisions*. This harness replays one (train, test) scenario twice — a
// fresh kExactF64 reference run and a run under the tier being checked —
// and compares everything downstream consumers act on: the calibrated
// theta_error gate, every predicted label, every drift detection, and every
// recovery. The golden-replay test pins the f64 tier to a committed
// transcript bit for bit; this harness pins the reduced tiers to the f64
// run within explicit decision tolerances.
//
// Per-sample labels are compared only over the shared-trajectory window
// [0, first detection of either run): a detection may legitimately shift by
// up to detection_slack samples under a reduced tier, and from that point
// on the two runs recover from different sample windows, so their states —
// and therefore their per-sample predictions — genuinely diverge. Within
// the shared window a disagreement counts against the budget only when the
// reference run's decision margin (relative score gap between the best and
// second-best instance) exceeds decision_margin_floor; below the floor the
// reference decision is itself inside the tier's noise band and the tier
// may break the tie either way.
#pragma once

#include <cstddef>
#include <string>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/data/stream.hpp"
#include "edgedrift/linalg/numerics.hpp"

namespace edgedrift::eval {

/// Tolerances on the decision comparison. Detection and label slack mirror
/// the golden-replay test's native-build tolerances. The gate tolerance is
/// looser: theta_error is calibrated through the tier's own scoring path
/// (so the gate stays consistent with the scores it gates), which means
/// quantization legitimately moves the gate — the contract holds the
/// *decisions*, not the gate's bits. Tighten theta_rel_tol per tier when a
/// test wants a sharper bound (f32 narrowing sits far below i8
/// quantization).
struct TierEquivalenceConfig {
  core::PipelineConfig pipeline;  ///< Reference config; numerics overridden.
  /// A paired detection may shift by at most this many samples (default:
  /// one detector window).
  std::size_t detection_slack = 100;
  /// Fraction of compared per-sample label predictions allowed to differ
  /// *materially* (reference margin above decision_margin_floor).
  double max_label_disagreement = 0.01;
  /// Reference decisions with a relative score margin at or below this are
  /// ties as far as the tier is concerned — flips there are not material.
  double decision_margin_floor = 0.05;
  /// Relative tolerance on the calibrated theta_error gate.
  double theta_rel_tol = 0.05;
  /// Rows fed per pipeline call. 1 replays the stream sample by sample
  /// (process()); >1 replays it through process_batch_range() in blocks of
  /// this many rows — the shape a serving-layer drain presents, and the
  /// only shape on which chunked training (PipelineConfig::train_chunk)
  /// engages. Both runs of the comparison use the same burst, so a chunked
  /// config is checked chunked-tier against chunked-f64.
  std::size_t burst = 1;
};

/// What the comparison measured, plus the verdict.
struct TierEquivalenceReport {
  linalg::NumericsTier tier = linalg::NumericsTier::kExactF64;
  std::size_t samples = 0;
  std::size_t reference_drifts = 0;     ///< Detections in the f64 run.
  std::size_t tier_drifts = 0;          ///< Detections in the tier run.
  std::size_t reference_recoveries = 0;
  std::size_t tier_recoveries = 0;
  std::size_t max_detection_shift = 0;  ///< Largest paired index delta.
  /// Samples in the shared-trajectory window the labels were compared over.
  std::size_t compared_samples = 0;
  std::size_t label_disagreements = 0;  ///< Raw flips in the window.
  /// Flips where the reference margin exceeded decision_margin_floor —
  /// the count the verdict is based on.
  std::size_t material_disagreements = 0;
  double theta_rel_diff = 0.0;
  bool equivalent = false;  ///< All tolerances held.
  /// Human-readable explanation when !equivalent, empty otherwise.
  std::string failure;
};

/// Runs the scenario under `tier` and under kExactF64 and compares the
/// drift decisions. The test stream's labels feed only the per-sample
/// supervision path, exactly as in the experiment runner.
TierEquivalenceReport check_tier_equivalence(
    linalg::NumericsTier tier, const data::Dataset& train,
    const data::Dataset& test, const TierEquivalenceConfig& config);

}  // namespace edgedrift::eval
