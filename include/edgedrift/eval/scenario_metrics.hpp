// Ground-truth scoring of one detector run over a compiled scenario: each
// annotated drift edge opens a detection window, and every detection index
// is classified as the edge's hit (delay = index - edge start), an extra
// in-window detection, or a false alarm. The false-alarm rate is
// normalized per 1000 samples *outside* all detection windows, so a
// scenario with many edges does not dilute the rate.
//
// The scoring is pure event arithmetic over (detections, annotations,
// stream length) — no pipeline state — which is what makes it exactly
// unit-testable from hand-built sequences (tests/test_scenario_metrics.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "edgedrift/data/scenario.hpp"

namespace edgedrift::eval {

/// Knobs of the event-matching rule.
struct ScenarioMetricsConfig {
  /// Samples after an edge's *completion* (annotation end — equal to the
  /// start for an abrupt edge) during which a detection credits the edge,
  /// so a wide gradual transition does not eat the detection budget. The
  /// window opens at the edge's start (delay is measured from onset) and
  /// is clipped at the next edge's start and the stream end, so windows
  /// never overlap.
  std::size_t detection_horizon = 1000;
  /// Trailing samples of each post-drift segment scored as "recovered"
  /// accuracy (clipped to the segment; segments shorter than the window
  /// contribute what they have).
  std::size_t recovery_window = 200;
};

/// Per-run scorecard. delays[k] is edge k's detection delay in samples,
/// or -1 when the edge was missed.
struct ScenarioMetrics {
  std::size_t stream_length = 0;
  std::size_t drift_points = 0;

  std::size_t detected = 0;  ///< Edges with an in-window detection.
  std::size_t missed = 0;    ///< drift_points - detected.
  std::vector<long> delays;  ///< Per-edge delay; -1 = missed.
  double mean_delay = 0.0;   ///< Over detected edges; 0 when none.

  /// In-window detections after an edge's first (re-detections of a drift
  /// already caught — noisy, but not false).
  std::size_t extra_detections = 0;
  std::size_t false_alarms = 0;      ///< Detections outside every window.
  std::size_t watched_samples = 0;   ///< Samples covered by some window.
  /// false_alarms per 1000 outside-window samples.
  double false_alarm_rate_per_1k = 0.0;

  // Accuracy block — only filled when a per-sample correctness span is
  // supplied (recovery_samples == 0 otherwise).
  std::size_t recovery_samples = 0;  ///< Samples in the recovery regions.
  double recovery_accuracy = 0.0;    ///< Correct fraction of those samples.
  double overall_accuracy = 0.0;     ///< Correct fraction of the stream.
};

/// Scores one run. `detections` holds the stream indices where the
/// detector fired (any order; scored sorted). `correct`, when non-empty,
/// must hold one 0/1 entry per stream sample and enables the accuracy
/// block. Annotations must be sorted by start (how compile_scenario
/// emits them).
ScenarioMetrics score_scenario(std::span<const std::size_t> detections,
                               std::span<const data::DriftAnnotation> annotations,
                               std::size_t stream_length,
                               std::span<const std::uint8_t> correct = {},
                               const ScenarioMetricsConfig& config = {});

}  // namespace edgedrift::eval
