// Canonical experiment configurations of the paper's Section 4.2, shared by
// the reproduction benches, the CLI and downstream users who want the
// published hyper-parameters as a starting point.
#pragma once

#include <cstddef>

#include "edgedrift/eval/experiment.hpp"

namespace edgedrift::eval {

/// NSL-KDD setup: OS-ELM 38-22-38 (C = 2), QuantTree B=480 K=32,
/// SPLL B=480, ONLAD forgetting 0.97, proposed window W (default 100).
ExperimentConfig nsl_kdd_paper_config(std::size_t window = 100);

/// Cooling-fan setup: OS-ELM 511-22-511 (C = 1 normal pattern), QuantTree
/// B=235 K=16, SPLL B=235, ONLAD forgetting 0.99, proposed window W
/// (default 50).
ExperimentConfig cooling_fan_paper_config(std::size_t window = 50);

}  // namespace edgedrift::eval
