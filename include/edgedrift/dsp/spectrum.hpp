// Waveform -> feature-vector front end.
//
// SpectrumExtractor reproduces the cooling-fan dataset's preprocessing: a
// 1024-sample frame sampled at 1024 Hz, windowed, FFT'd, and reduced to
// the 511 magnitude bins covering 1..511 Hz. FanWaveform is the
// time-domain counterpart of data::FanSpectrumConcept — a physically
// plausible accelerometer signal (harmonic series, damage signatures,
// environment noise) whose extracted spectra exercise the identical
// downstream code path as the bundled spectral generator.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/data/cooling_fan_like.hpp"
#include "edgedrift/dsp/fft.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::dsp {

/// Frame-to-spectrum converter with the cooling-fan conventions.
class SpectrumExtractor {
 public:
  /// frame_size must be a power of two; output dimensionality is
  /// frame_size/2 - 1 (511 for the default 1024).
  explicit SpectrumExtractor(std::size_t frame_size = 1024,
                             Window window = Window::kHann);

  std::size_t frame_size() const { return frame_size_; }
  std::size_t output_dim() const { return frame_size_ / 2 - 1; }
  Window window() const { return window_; }

  /// Extracts the magnitude spectrum of one frame; `out` must have length
  /// output_dim(). The input frame is copied (not modified).
  void extract(std::span<const double> frame, std::span<double> out) const;

  /// Convenience: allocate-and-return variant.
  std::vector<double> extract(std::span<const double> frame) const;

 private:
  std::size_t frame_size_;
  Window window_;
};

/// Time-domain fan vibration synthesizer (counterpart of
/// data::FanSpectrumConcept). Sample rate is fixed at 1024 Hz so a
/// 1024-sample frame yields 1 Hz bins.
class FanWaveform {
 public:
  static constexpr double kSampleRate = 1024.0;

  FanWaveform(data::FanCondition condition,
              data::FanEnvironment environment);

  /// Synthesizes `frame` samples of acceleration, continuing the phase
  /// from previous calls (a continuous virtual sensor).
  void synthesize(util::Rng& rng, std::span<double> frame);

  data::FanCondition condition() const { return condition_; }

 private:
  data::FanCondition condition_;
  data::FanEnvironment environment_;
  double phase_ = 0.0;  ///< Rotation phase in revolutions.
};

}  // namespace edgedrift::dsp
