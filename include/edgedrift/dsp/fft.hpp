// Radix-2 FFT and spectrum utilities.
//
// The paper's cooling-fan dataset consists of 511-bin frequency spectra
// (1-511 Hz) computed from accelerometer waveforms. This module is the
// missing front-end: an allocation-conscious iterative radix-2 FFT plus
// the windowing/magnitude steps that turn a raw vibration frame into the
// feature vector the pipeline consumes. Everything is plain C++ with
// precomputable twiddles, deployable on the same MCU class as the rest of
// the system.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace edgedrift::dsp {

/// True iff n is a power of two (and nonzero).
constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place iterative radix-2 FFT. data.size() must be a power of two.
/// inverse = true computes the unscaled inverse transform (divide by N
/// yourself or use ifft()).
void fft(std::span<std::complex<double>> data, bool inverse = false);

/// Inverse FFT including the 1/N scaling.
void ifft(std::span<std::complex<double>> data);

/// FFT of a real signal: returns the full complex spectrum (length n).
std::vector<std::complex<double>> fft_real(std::span<const double> signal);

/// Magnitude spectrum |X_k| / (N/2) for k = 1 .. n/2 - 1 (bin 0/DC and the
/// Nyquist bin are dropped, matching the cooling-fan dataset's 1..511 Hz
/// convention for a 1024-sample frame at 1024 Hz).
std::vector<double> magnitude_spectrum(std::span<const double> signal);

/// Window functions applied in place before the FFT.
enum class Window {
  kRectangular,
  kHann,
  kHamming,
};

/// Applies the window to the frame in place.
void apply_window(Window window, std::span<double> frame);

}  // namespace edgedrift::dsp
