// Pipeline checkpointing: persist a fitted edgedrift::core::Pipeline (model
// weights, detector calibration, thresholds) and restore it elsewhere.
//
// Use case: the initial batch training (which needs the Cholesky solve and
// the full training window) runs on a gateway-class machine; the resulting
// state blob — a few tens of kB for the paper's configurations — is shipped
// to the microcontroller, which then runs the fully sequential part only.
//
// The checkpoint stores the full PipelineConfig, the shared projection
// weights, every instance's (beta, P) pair, and the detector's centroid
// state. Loading reconstructs the pipeline and verifies the projection
// weights bit-for-bit (they are re-drawn from the persisted seed, so any
// mismatch indicates a version or RNG change and the load fails cleanly).
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "edgedrift/core/pipeline.hpp"

namespace edgedrift::io {

/// Writes a fitted pipeline. Returns false on I/O failure or if the
/// pipeline is not fitted.
bool save_pipeline(std::ostream& out, const core::Pipeline& pipeline);

/// Reads a pipeline checkpoint. Returns nullopt on any corruption,
/// format-version, or consistency failure.
std::optional<core::Pipeline> load_pipeline(std::istream& in);

/// File-path conveniences.
bool save_pipeline_file(const std::string& path,
                        const core::Pipeline& pipeline);
std::optional<core::Pipeline> load_pipeline_file(const std::string& path);

}  // namespace edgedrift::io
