// Pipeline checkpointing: persist a fitted edgedrift::core::Pipeline (model
// weights, detector calibration, thresholds) and restore it elsewhere.
//
// Use case: the initial batch training (which needs the Cholesky solve and
// the full training window) runs on a gateway-class machine; the resulting
// state blob — a few tens of kB for the paper's configurations — is shipped
// to the microcontroller, which then runs the fully sequential part only.
//
// The checkpoint stores the full PipelineConfig, the shared projection
// weights, every instance's (beta, P) pair, and the detector's centroid
// state. Loading reconstructs the pipeline and verifies the projection
// weights bit-for-bit (they are re-drawn from the persisted seed, so any
// mismatch indicates a version or RNG change and the load fails cleanly).
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "edgedrift/core/pipeline.hpp"
#include "edgedrift/linalg/numerics.hpp"

namespace edgedrift::io {

/// Writes a fitted pipeline. Returns false on I/O failure or if the
/// pipeline is not fitted. The checkpoint records the pipeline's active
/// NumericsTier (format v2): the tier is part of the drift-decision
/// contract, so a restore site must get the tier it expects or fail loudly.
bool save_pipeline(std::ostream& out, const core::Pipeline& pipeline);

/// Reads a pipeline checkpoint. Returns nullopt on any corruption,
/// format-version, or consistency failure. When `expect_tier` is set, a
/// checkpoint recorded under any other tier is rejected. When `error` is
/// non-null it receives a human-readable reason on failure.
///
/// `runtime` (optional) overlays the restore site's runtime-only
/// configuration — detector spec, recovery policy, obs options,
/// max_batch_rows — none of which the checkpoint persists (they describe
/// the serving process, not the trained state). Its model shape
/// (num_labels / input_dim / hidden_dim) must match the checkpoint and its
/// detector spec must be the centroid family (the only detector this
/// format can restore state into); anything else fails the load. This is
/// how PipelineManager's eviction layer rehydrates cold streams with the
/// manager's own serving knobs instead of checkpoint-era defaults.
std::optional<core::Pipeline> load_pipeline(
    std::istream& in,
    std::optional<linalg::NumericsTier> expect_tier = std::nullopt,
    std::string* error = nullptr,
    const core::PipelineConfig* runtime = nullptr);

/// File-path conveniences.
bool save_pipeline_file(const std::string& path,
                        const core::Pipeline& pipeline);
std::optional<core::Pipeline> load_pipeline_file(
    const std::string& path,
    std::optional<linalg::NumericsTier> expect_tier = std::nullopt,
    std::string* error = nullptr,
    const core::PipelineConfig* runtime = nullptr);

}  // namespace edgedrift::io
