// Binary (de)serialization primitives.
//
// Format: little-endian host layout, length-prefixed blocks, a magic tag
// and version per file. Intended for checkpointing trained pipelines
// (train on a gateway, ship the state blob to the device); not an
// interchange format.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::io {

inline constexpr std::uint32_t kMagic = 0x45444446;  // "EDDF".
/// v2: PipelineConfig gained the NumericsTier field (the tiered numerics
/// contract). v1 blobs are rejected — the tier is part of the drift-decision
/// contract, so silently defaulting it on restore would be wrong.
/// v2 also carries the projection fingerprint after the projection block
/// (verified on load against the rebuilt projection's digest), so restored
/// streams rejoin their save-side coalescing groups.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Streaming writer; check ok() once at the end.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  void write_f64(double value);
  void write_string(const std::string& value);
  void write_doubles(std::span<const double> values);
  void write_sizes(std::span<const std::size_t> values);
  void write_matrix(const linalg::Matrix& m);

  /// Writes the file header (magic + format version + a section tag).
  void write_header(const std::string& section);

  /// Appends the FNV-1a checksum of every byte written so far. Call last;
  /// Reader::verify_checksum() checks it.
  void write_checksum();

  bool ok() const { return static_cast<bool>(out_); }

 private:
  void put(const void* src, std::size_t bytes);

  std::ostream& out_;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
};

/// Streaming reader; every read reports success, and failures latch.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  bool read_u32(std::uint32_t& value);
  bool read_u64(std::uint64_t& value);
  bool read_f64(double& value);
  bool read_string(std::string& value);
  bool read_doubles(std::vector<double>& values);
  bool read_sizes(std::vector<std::size_t>& values);
  bool read_matrix(linalg::Matrix& m);

  /// Verifies magic, format version, and the expected section tag.
  bool read_header(const std::string& expected_section);

  /// Reads the trailing checksum and compares it against the hash of every
  /// byte consumed so far. Call last.
  bool verify_checksum();

  bool ok() const { return ok_ && static_cast<bool>(in_); }

 private:
  bool take(void* dst, std::size_t bytes);

  /// Bytes left in the stream (SIZE_MAX for non-seekable streams). Length
  /// prefixes are validated against this before any allocation, so a
  /// corrupted count can never trigger a huge resize.
  std::size_t remaining_bytes();

  std::istream& in_;
  bool ok_ = true;
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
};

}  // namespace edgedrift::io
