// obs::Counters — relaxed-atomic per-stream serving counters.
//
// The always-on half of the observability layer (see obs/stream_obs.hpp):
// one cache-friendly block of std::atomic<uint64_t> per stream, written
// with relaxed increments by whichever thread is doing the work (producers
// count rejections and ring depth, the single consumer counts everything
// else) and read at any time by a stats() snapshot. Relaxed is enough
// because every field is an independent monotonic counter: a snapshot may
// be "torn" across fields (samples_in one increment ahead of samples_out)
// but each individual value is always a real count — the coherence
// contract tests/test_obs.cpp pins under ThreadSanitizer.
//
// Compiled out: defining EDGEDRIFT_NO_OBS (CMake -DEDGEDRIFT_NO_OBS=ON)
// turns every mutator in the obs layer into an empty inline function, so
// an MCU-class build pays zero bytes and zero cycles for instrumentation.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace edgedrift::obs {

/// False when the whole obs layer is compiled to no-ops.
#if defined(EDGEDRIFT_NO_OBS)
inline constexpr bool kObsCompiled = false;
#else
inline constexpr bool kObsCompiled = true;
#endif

/// Monotonic wall clock for latency instrumentation (steady, ns).
inline std::uint64_t now_ns() {
  if constexpr (!kObsCompiled) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Plain-value copy of one Counters block (what stats() hands out).
struct CounterSnapshot {
  std::uint64_t samples_in = 0;      ///< Samples entering the pipeline.
  std::uint64_t samples_out = 0;     ///< Samples fully processed.
  std::uint64_t rejected = 0;        ///< Dropped by kReject backpressure.
  std::uint64_t windows_opened = 0;  ///< Detector evaluation windows opened.
  std::uint64_t drifts = 0;          ///< Drift detections fired.
  std::uint64_t retrains = 0;        ///< Recoveries completed.
  std::uint64_t chunk_trains = 0;    ///< Rank-k bucket updates applied.
  std::uint64_t chunk_train_rows = 0;  ///< Samples absorbed by those updates.
  std::uint64_t requants_saved = 0;  ///< Replica refreshes amortized away.
  std::uint64_t ring_high_water = 0; ///< Max observed ring depth.

  CounterSnapshot& operator+=(const CounterSnapshot& o) {
    samples_in += o.samples_in;
    samples_out += o.samples_out;
    rejected += o.rejected;
    windows_opened += o.windows_opened;
    drifts += o.drifts;
    retrains += o.retrains;
    chunk_trains += o.chunk_trains;
    chunk_train_rows += o.chunk_train_rows;
    requants_saved += o.requants_saved;
    ring_high_water = ring_high_water > o.ring_high_water
                          ? ring_high_water
                          : o.ring_high_water;
    return *this;
  }
};

/// Per-stream streaming counters, safe to read while written.
///
/// Every add_* field has exactly one logical writer (the stream's single
/// drain task; rejections come from producers serialized by the stream's
/// produce mutex), so the mutators are plain load+store on the atomic —
/// a regular store instead of a lock-prefixed RMW, which matters at two
/// counter bumps per sample on a sub-microsecond batch path. Only
/// ring_high_water has concurrent writers (producers and the drain task)
/// and pays for a CAS loop.
class Counters {
 public:
  void add_samples_in(std::uint64_t n = 1) { add(samples_in_, n); }
  void add_samples_out(std::uint64_t n = 1) { add(samples_out_, n); }
  void add_rejected(std::uint64_t n = 1) { add(rejected_, n); }
  void add_window_opened() { add(windows_opened_, 1); }
  void add_drift() { add(drifts_, 1); }
  void add_retrain() { add(retrains_, 1); }
  // Chunked-training instrumentation (written by the drain task like the
  // other consumer-side counters): rank-k bucket updates issued, samples
  // they absorbed, and f32/i8 replica requantizations the per-bucket
  // amortization avoided relative to the per-sample path.
  void add_chunk_trains(std::uint64_t n) { add(chunk_trains_, n); }
  void add_chunk_train_rows(std::uint64_t n) { add(chunk_train_rows_, n); }
  void add_requants_saved(std::uint64_t n) { add(requants_saved_, n); }

  /// Relaxed CAS-max: producers of one stream may race each other here.
  void update_ring_high_water(std::uint64_t depth) {
    if constexpr (!kObsCompiled) return;
    std::uint64_t cur = ring_high_water_.load(std::memory_order_relaxed);
    while (depth > cur &&
           !ring_high_water_.compare_exchange_weak(
               cur, depth, std::memory_order_relaxed)) {
    }
  }

  CounterSnapshot snapshot() const {
    CounterSnapshot s;
    if constexpr (!kObsCompiled) return s;
    s.samples_in = samples_in_.load(std::memory_order_relaxed);
    s.samples_out = samples_out_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.windows_opened = windows_opened_.load(std::memory_order_relaxed);
    s.drifts = drifts_.load(std::memory_order_relaxed);
    s.retrains = retrains_.load(std::memory_order_relaxed);
    s.chunk_trains = chunk_trains_.load(std::memory_order_relaxed);
    s.chunk_train_rows = chunk_train_rows_.load(std::memory_order_relaxed);
    s.requants_saved = requants_saved_.load(std::memory_order_relaxed);
    s.ring_high_water = ring_high_water_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    if constexpr (!kObsCompiled) return;
    samples_in_.store(0, std::memory_order_relaxed);
    samples_out_.store(0, std::memory_order_relaxed);
    rejected_.store(0, std::memory_order_relaxed);
    windows_opened_.store(0, std::memory_order_relaxed);
    drifts_.store(0, std::memory_order_relaxed);
    retrains_.store(0, std::memory_order_relaxed);
    chunk_trains_.store(0, std::memory_order_relaxed);
    chunk_train_rows_.store(0, std::memory_order_relaxed);
    requants_saved_.store(0, std::memory_order_relaxed);
    ring_high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Single-writer increment (see class comment): load+store, not RMW.
  static void add(std::atomic<std::uint64_t>& c, std::uint64_t n) {
    if constexpr (!kObsCompiled) return;
    c.store(c.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> samples_in_{0};
  std::atomic<std::uint64_t> samples_out_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> windows_opened_{0};
  std::atomic<std::uint64_t> drifts_{0};
  std::atomic<std::uint64_t> retrains_{0};
  std::atomic<std::uint64_t> chunk_trains_{0};
  std::atomic<std::uint64_t> chunk_train_rows_{0};
  std::atomic<std::uint64_t> requants_saved_{0};
  std::atomic<std::uint64_t> ring_high_water_{0};
};

}  // namespace edgedrift::obs
