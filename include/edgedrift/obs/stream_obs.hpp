// obs::StreamObs — the per-stream observability block core::Pipeline owns.
//
// One StreamObs bundles the four recording primitives of the layer:
// relaxed-atomic Counters, three pipeline-stage LatencyHistograms plus the
// serving layer's submit->drain histogram, and the DriftJournal. Everything
// is preallocated at construction and recording is allocation-free and
// lock-free, so the block can be written from the serving hot path and read
// by stats() snapshots at any time from any thread.
//
// Instrumentation is observation-only by contract: nothing the pipeline
// computes may depend on a StreamObs, so obs-on and obs-off runs are
// bit-identical (tests/test_obs.cpp pins this on the C=23 configuration).
// ObsOptions::enabled gates recording at runtime; compiling with
// EDGEDRIFT_NO_OBS removes the layer entirely (see obs/counters.hpp).
#pragma once

#include <cstddef>
#include <cstdint>

#include "edgedrift/obs/counters.hpp"
#include "edgedrift/obs/drift_journal.hpp"
#include "edgedrift/obs/latency_histogram.hpp"
#include "edgedrift/obs/snapshot.hpp"

namespace edgedrift::obs {

/// Observability knobs, fixed at pipeline construction.
struct ObsOptions {
  /// Runtime master switch. Off: the pipeline skips every recording site
  /// (the StreamObs stays readable, just frozen at zero).
  bool enabled = true;

  /// Drift events the journal retains before overwriting the oldest.
  std::size_t journal_capacity = 64;

  /// Per-sample latency instruments (score, detect, submit->drain) are
  /// timed on every Nth sample — at full native batch throughput a clock
  /// read plus histogram store per sample alone costs ~3%, so sampling is
  /// what keeps the layer under the perf-smoke budget. The pipeline keys
  /// score/detect off its own sample tick; the serving layer keys
  /// submit->drain off the absolute ring position, so producer (stamp) and
  /// consumer (record) agree on which slots carry timestamps. Rounded up
  /// to a power of two; 1 times every sample. Counters and the journal are
  /// never sampled — those books balance exactly.
  std::size_t latency_sample_every = 16;
};

/// The recording block. Construction allocates; recording never does.
class StreamObs {
 public:
  StreamObs(const ObsOptions& options, std::size_t num_labels)
      : journal(options.journal_capacity, num_labels),
        enabled_(kObsCompiled && options.enabled),
        sample_mask_(mask_of(options.latency_sample_every)) {}

  /// True when recording sites should run (compile-time AND runtime gate).
  bool enabled() const { return enabled_; }

  /// (tick & mask) == 0 selects the samples that are clock-timed; the
  /// caller owns the tick counter (pipeline sample tick for score/detect,
  /// absolute ring position for submit->drain).
  std::uint64_t latency_sample_mask() const { return sample_mask_; }

  StreamSnapshot snapshot(std::size_t stream_id) const {
    StreamSnapshot s;
    s.stream_id = stream_id;
    s.counters = counters.snapshot();
    s.submit_to_drain = submit_to_drain.snapshot();
    s.score = score.snapshot();
    s.detect = detect.snapshot();
    s.reconstruct = reconstruct.snapshot();
    s.drift_events_total = journal.total_events();
    s.journal = journal.snapshot();
    return s;
  }

  void reset() {
    counters.reset();
    submit_to_drain.reset();
    score.reset();
    detect.reset();
    reconstruct.reset();
    journal.reset();
  }

  Counters counters;
  LatencyHistogram submit_to_drain;
  LatencyHistogram score;
  LatencyHistogram detect;
  LatencyHistogram reconstruct;
  DriftJournal journal;

 private:
  static std::uint64_t mask_of(std::size_t every) {
    std::uint64_t n = 1;
    while (n < every) n <<= 1;
    return n - 1;
  }

  bool enabled_;
  std::uint64_t sample_mask_;
};

}  // namespace edgedrift::obs
