// obs::ShardObs — per-shard serving counters for the sharded manager.
//
// Each serving shard (core/pipeline_manager.hpp) owns one ShardObs block,
// so in the steady state no two shards ever write the same cache line.
// Unlike obs::Counters, the eviction counters here can be bumped from two
// threads at once (a producer restoring a cold stream races the shard
// worker evicting another), so mutators are relaxed fetch_add rather than
// the single-writer load+store trick. The latency histograms reuse
// obs::LatencyHistogram, whose record() is already multi-writer-safe.
//
// Gauges (hot/cold stream counts, resident bytes, pinning state) live in
// the shard itself and are copied into the ShardSnapshot by stats(); this
// block only holds the monotonic event counters and histograms.
//
// Under EDGEDRIFT_NO_OBS every mutator compiles to an empty inline
// function (see obs/counters.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "edgedrift/obs/counters.hpp"
#include "edgedrift/obs/latency_histogram.hpp"

namespace edgedrift::obs {

/// One shard's complete observability state at a point in time.
struct ShardSnapshot {
  std::size_t shard_id = 0;
  bool pinned = false;            ///< Worker thread is core-pinned.
  std::uint64_t hot_streams = 0;  ///< Streams resident in this shard.
  std::uint64_t cold_streams = 0; ///< Streams evicted to the cold store.
  std::uint64_t hot_bytes = 0;    ///< Resident footprint (models + rings).
  std::uint64_t cold_bytes = 0;   ///< Cold-store payload bytes.
  std::uint64_t evictions = 0;    ///< Streams serialized out.
  std::uint64_t restores = 0;     ///< Streams deserialized back in.
  std::uint64_t restore_failures = 0;  ///< Restores that failed (typed error).
  std::uint64_t evict_skipped = 0;     ///< Budget passes that found no victim.
  std::uint64_t worker_parks = 0;      ///< Times the drain worker slept.
  // Cross-stream coalescing efficiency (the drain planner,
  // core/manager_coalesce.cpp). rows/gemms is the mega-batch fill the
  // planner achieved; streams/gemms the mean group width; fallbacks counts
  // streams that drained per-stream because their projection group was too
  // small (group-of-one, fingerprint mismatch, or ineligible state).
  std::uint64_t coalesced_gemms = 0;    ///< Shared projection GEMMs issued.
  std::uint64_t coalesced_rows = 0;     ///< Rows scored through those GEMMs.
  std::uint64_t coalesced_streams = 0;  ///< Group memberships (sum of widths).
  std::uint64_t coalesce_fallbacks = 0; ///< Streams left to per-stream drain.
  HistogramSnapshot evict_ns;          ///< Serialize-and-release latency.
  HistogramSnapshot restore_ns;        ///< Load-and-admit latency.

  /// Mean rows per shared projection GEMM (0 when none ran).
  double rows_per_gemm() const {
    return coalesced_gemms == 0 ? 0.0
                                : static_cast<double>(coalesced_rows) /
                                      static_cast<double>(coalesced_gemms);
  }
};

/// Per-shard event counters + eviction/restore latency histograms.
class ShardObs {
 public:
  void add_eviction() { add(evictions_); }
  void add_restore() { add(restores_); }
  void add_restore_failure() { add(restore_failures_); }
  void add_evict_skipped() { add(evict_skipped_); }
  void add_worker_park() { add(worker_parks_); }
  /// One coalesced mega-batch: `rows` ring rows from `streams` streams
  /// went through a single shared projection GEMM.
  void add_coalesced_gemm(std::size_t rows, std::size_t streams) {
    if constexpr (!kObsCompiled) return;
    coalesced_gemms_.fetch_add(1, std::memory_order_relaxed);
    coalesced_rows_.fetch_add(rows, std::memory_order_relaxed);
    coalesced_streams_.fetch_add(streams, std::memory_order_relaxed);
  }
  void add_coalesce_fallback(std::size_t streams) {
    if constexpr (!kObsCompiled) return;
    coalesce_fallbacks_.fetch_add(streams, std::memory_order_relaxed);
  }

  LatencyHistogram& evict_ns() { return evict_ns_; }
  LatencyHistogram& restore_ns() { return restore_ns_; }

  /// Counter/histogram half of a ShardSnapshot; the caller fills the
  /// gauges (stream counts, bytes, pinning) from the shard's own state.
  ShardSnapshot snapshot(std::size_t shard_id) const {
    ShardSnapshot s;
    s.shard_id = shard_id;
    if constexpr (!kObsCompiled) return s;
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.restores = restores_.load(std::memory_order_relaxed);
    s.restore_failures = restore_failures_.load(std::memory_order_relaxed);
    s.evict_skipped = evict_skipped_.load(std::memory_order_relaxed);
    s.worker_parks = worker_parks_.load(std::memory_order_relaxed);
    s.coalesced_gemms = coalesced_gemms_.load(std::memory_order_relaxed);
    s.coalesced_rows = coalesced_rows_.load(std::memory_order_relaxed);
    s.coalesced_streams = coalesced_streams_.load(std::memory_order_relaxed);
    s.coalesce_fallbacks =
        coalesce_fallbacks_.load(std::memory_order_relaxed);
    s.evict_ns = evict_ns_.snapshot();
    s.restore_ns = restore_ns_.snapshot();
    return s;
  }

 private:
  /// Multi-writer increment (producer restore path races worker evictions).
  static void add(std::atomic<std::uint64_t>& c) {
    if constexpr (!kObsCompiled) return;
    c.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> restores_{0};
  std::atomic<std::uint64_t> restore_failures_{0};
  std::atomic<std::uint64_t> evict_skipped_{0};
  std::atomic<std::uint64_t> worker_parks_{0};
  std::atomic<std::uint64_t> coalesced_gemms_{0};
  std::atomic<std::uint64_t> coalesced_rows_{0};
  std::atomic<std::uint64_t> coalesced_streams_{0};
  std::atomic<std::uint64_t> coalesce_fallbacks_{0};
  LatencyHistogram evict_ns_;
  LatencyHistogram restore_ns_;
};

}  // namespace edgedrift::obs
