// obs::LatencyHistogram — fixed-bucket log2 latency histogram.
//
// 32 power-of-two buckets cover [0, 2^31) ns (~2.1 s; anything beyond
// saturates into the last bucket): bucket 0 holds the value 0, bucket b>0
// holds values in [2^(b-1), 2^b - 1]. record() is one bit_width plus one
// relaxed fetch_add — no heap, no lock, safe to read concurrently — so it
// can sit on the per-sample serving path. Histograms merge by bucket-wise
// addition; merge(a, b) is exactly equivalent to recording every value into
// one histogram (tests/test_obs.cpp proves the property over random
// sweeps).
//
// Under EDGEDRIFT_NO_OBS every mutator compiles to an empty inline
// function (see obs/counters.hpp).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "edgedrift/obs/counters.hpp"

namespace edgedrift::obs {

/// Plain-value copy of one histogram (what stats() hands out).
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 32;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) total += b;
    return total;
  }

  double mean_ns() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_ns) / static_cast<double>(n);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]):
  /// the recorded value at that rank is <= the returned nanoseconds.
  std::uint64_t quantile_upper_ns(double q) const;

  HistogramSnapshot& operator+=(const HistogramSnapshot& o) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += o.buckets[b];
    sum_ns += o.sum_ns;
    max_ns = max_ns > o.max_ns ? max_ns : o.max_ns;
    return *this;
  }
};

/// Concurrent-read-safe fixed-bucket histogram; no heap anywhere.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  /// Bucket index of a value: 0 -> 0, v > 0 -> bit_width(v), saturated.
  static std::size_t bucket_of(std::uint64_t ns) {
    const std::size_t b =
        ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns));
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Smallest value mapping to bucket `b` (0 for buckets 0 and 1).
  static std::uint64_t bucket_lower_ns(std::size_t b) {
    return b <= 1 ? 0 : std::uint64_t{1} << (b - 1);
  }

  /// Largest value mapping to bucket `b` (the last bucket saturates).
  static std::uint64_t bucket_upper_ns(std::size_t b) {
    if (b == 0) return 0;
    if (b >= kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t ns) {
    if constexpr (!kObsCompiled) return;
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (ns > cur && !max_ns_.compare_exchange_weak(
                           cur, ns, std::memory_order_relaxed)) {
    }
  }

  /// Bucket-wise accumulation of another histogram's current contents.
  void merge(const LatencyHistogram& other) {
    if constexpr (!kObsCompiled) return;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::uint64_t n =
          other.buckets_[b].load(std::memory_order_relaxed);
      if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
    }
    sum_ns_.fetch_add(other.sum_ns_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    const std::uint64_t other_max =
        other.max_ns_.load(std::memory_order_relaxed);
    std::uint64_t cur = max_ns_.load(std::memory_order_relaxed);
    while (other_max > cur &&
           !max_ns_.compare_exchange_weak(cur, other_max,
                                          std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    if constexpr (!kObsCompiled) return s;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    }
    s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    s.max_ns = max_ns_.load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    if constexpr (!kObsCompiled) return;
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    max_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

inline std::uint64_t HistogramSnapshot::quantile_upper_ns(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return LatencyHistogram::bucket_upper_ns(b);
    }
  }
  return LatencyHistogram::bucket_upper_ns(kBuckets - 1);
}

}  // namespace edgedrift::obs
