// obs::Snapshot — plain-value aggregation of the observability layer.
//
// A snapshot is what crosses the thread boundary: every field is a copied
// value, safe to hold, print or serialize long after the pipelines moved
// on. PipelineManager::stats() (and Pipeline::obs_snapshot() for a single
// stream) produce one; to_text() renders the operator-facing summary the
// CLI --stats flag prints, and write_json() emits the machine-readable
// "edgedrift-obs-v1" record — the observability sibling of the
// edgedrift-bench-v1 schema (same envelope: schema / binary / simd level),
// consumed by the bench reporters and the perf-smoke CI job.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "edgedrift/obs/counters.hpp"
#include "edgedrift/obs/drift_journal.hpp"
#include "edgedrift/obs/latency_histogram.hpp"
#include "edgedrift/obs/shard_obs.hpp"

namespace edgedrift::obs {

/// One stream's complete observability state at a point in time.
struct StreamSnapshot {
  std::size_t stream_id = 0;
  CounterSnapshot counters;
  HistogramSnapshot submit_to_drain;  ///< Ring enqueue -> drained, per row.
  HistogramSnapshot score;            ///< Model scoring, per sample.
  HistogramSnapshot detect;           ///< Detector observe(), per sample.
  HistogramSnapshot reconstruct;      ///< Recovery step, per sample.
  std::uint64_t drift_events_total = 0;  ///< Lifetime journal count.
  std::vector<DriftEvent> journal;       ///< Retained events, oldest first.

  /// Merges another snapshot of the SAME stream (how PipelineManager folds
  /// a live obs block into the history carried across evict/restore
  /// cycles): counters and histograms add, journals concatenate in order.
  /// Keeps this snapshot's stream_id.
  StreamSnapshot& operator+=(const StreamSnapshot& o) {
    counters += o.counters;
    submit_to_drain += o.submit_to_drain;
    score += o.score;
    detect += o.detect;
    reconstruct += o.reconstruct;
    drift_events_total += o.drift_events_total;
    journal.insert(journal.end(), o.journal.begin(), o.journal.end());
    return *this;
  }
};

/// Multi-stream aggregation with text and JSON exporters.
struct Snapshot {
  std::vector<StreamSnapshot> streams;
  /// One entry per serving shard (empty outside the sharded manager).
  std::vector<ShardSnapshot> shards;

  /// Counters summed across streams (high-water is the max).
  CounterSnapshot totals() const;

  /// Operator-facing text rendering (counters table, latency quantiles,
  /// recent drift events).
  std::string to_text() const;

  /// "edgedrift-obs-v1" JSON. `source` names the producing binary.
  std::string to_json(std::string_view source) const;

  /// Writes to_json() to `path`; false when the file cannot be opened.
  bool write_json(const std::string& path, std::string_view source) const;
};

}  // namespace edgedrift::obs
