// obs::DriftJournal — a fixed-capacity ring of drift-event records.
//
// Replaces ad-hoc logging of detections: when the detector fires, the
// pipeline begins an event (sample index, detector statistic, per-label
// centroid displacement, theta_drift, window span, recovery action); when
// the recovery finishes, the same event is completed with its duration in
// samples. The ring holds the most recent `capacity` events — older ones
// are overwritten, with total_events() preserving the lifetime count.
//
// Storage is preallocated at construction (one slot array plus one flat
// [capacity x num_labels] distance buffer), so begin/complete never touch
// the heap — they can run inside the serving hot path's drift branch.
// Every field is a relaxed atomic and each slot carries a seqlock-style
// sequence counter (odd while being written, bumped with release on
// publish), so concurrent snapshot() readers always observe a coherent
// record or retry — no locks anywhere, clean under ThreadSanitizer.
//
// Under EDGEDRIFT_NO_OBS the journal allocates nothing and records nothing
// (see obs/counters.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "edgedrift/obs/counters.hpp"

namespace edgedrift::obs {

/// What a detection triggered (mirrors core::RecoveryPolicy without the
/// dependency; core/pipeline.cpp maps between them).
enum class RecoveryAction : std::uint8_t {
  kNone = 0,         ///< Detect-only: the model was left untouched.
  kReconstruct = 1,  ///< Streaming model reconstruction (Algorithms 2-4).
  kRecalibrate = 2,  ///< Reset + self-label retrain.
};

/// Plain-value copy of one drift event (what snapshot() hands out).
struct DriftEvent {
  std::uint64_t sample_index = 0;  ///< 0-based stream index of the firing.
  double statistic = 0.0;          ///< Detector distance/statistic at fire.
  double theta_drift = 0.0;        ///< Threshold in force when it fired.
  std::uint32_t window_span = 0;   ///< Evaluation window size W.
  RecoveryAction action = RecoveryAction::kNone;
  bool completed = false;          ///< The recovery has finished.
  std::uint64_t recovery_samples = 0;  ///< Samples the recovery consumed.
  /// Per-label |recent - trained| centroid displacement at the firing
  /// (empty when the detector tracks no centroids).
  std::vector<double> per_label_distance;
};

/// Lock-free fixed-capacity drift-event ring. Single writer (the stream's
/// consumer thread), any number of concurrent snapshot() readers.
class DriftJournal {
 public:
  DriftJournal(std::size_t capacity, std::size_t num_labels)
      : capacity_(kObsCompiled ? capacity : 0), num_labels_(num_labels) {
    if constexpr (kObsCompiled) {
      slots_ = std::vector<Slot>(capacity_);
      distances_ =
          std::vector<std::atomic<double>>(capacity_ * num_labels_);
    }
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t num_labels() const { return num_labels_; }

  /// Lifetime count of begun events (>= what the ring still holds).
  std::uint64_t total_events() const {
    if constexpr (!kObsCompiled) return 0;
    return events_.load(std::memory_order_acquire);
  }

  /// Opens a new event record. `per_label` holds num_labels displacement
  /// terms or is empty. Allocation-free.
  void begin_event(std::uint64_t sample_index, double statistic,
                   double theta_drift, std::uint32_t window_span,
                   RecoveryAction action,
                   std::span<const double> per_label) {
    if constexpr (!kObsCompiled) return;
    if (capacity_ == 0) return;
    const std::uint64_t event = events_.load(std::memory_order_relaxed);
    const std::size_t slot = static_cast<std::size_t>(event % capacity_);
    Slot& s = slots_[slot];
    // Odd sequence = record under construction; readers retry.
    s.seq.fetch_add(1, std::memory_order_acq_rel);
    s.sample_index.store(sample_index, std::memory_order_relaxed);
    s.statistic.store(statistic, std::memory_order_relaxed);
    s.theta_drift.store(theta_drift, std::memory_order_relaxed);
    s.window_span.store(window_span, std::memory_order_relaxed);
    s.action.store(static_cast<std::uint8_t>(action),
                   std::memory_order_relaxed);
    // Detect-only events have no recovery to wait for.
    s.completed.store(action == RecoveryAction::kNone,
                      std::memory_order_relaxed);
    s.recovery_samples.store(0, std::memory_order_relaxed);
    s.has_distances.store(!per_label.empty(), std::memory_order_relaxed);
    for (std::size_t c = 0; c < num_labels_ && c < per_label.size(); ++c) {
      distances_[slot * num_labels_ + c].store(per_label[c],
                                               std::memory_order_relaxed);
    }
    s.seq.fetch_add(1, std::memory_order_release);
    events_.store(event + 1, std::memory_order_release);
  }

  /// Marks the most recently begun event finished after `recovery_samples`
  /// consumed samples. Allocation-free; no-op when nothing is open.
  void complete_event(std::uint64_t recovery_samples) {
    if constexpr (!kObsCompiled) return;
    const std::uint64_t event = events_.load(std::memory_order_relaxed);
    if (capacity_ == 0 || event == 0) return;
    Slot& s = slots_[static_cast<std::size_t>((event - 1) % capacity_)];
    s.seq.fetch_add(1, std::memory_order_acq_rel);
    s.recovery_samples.store(recovery_samples, std::memory_order_relaxed);
    s.completed.store(true, std::memory_order_relaxed);
    s.seq.fetch_add(1, std::memory_order_release);
  }

  /// Coherent copy of the retained events, oldest first. Allocates (never
  /// call on the hot path).
  std::vector<DriftEvent> snapshot() const {
    std::vector<DriftEvent> out;
    if constexpr (!kObsCompiled) return out;
    if (capacity_ == 0) return out;
    const std::uint64_t total = events_.load(std::memory_order_acquire);
    const std::uint64_t retained =
        total < capacity_ ? total : static_cast<std::uint64_t>(capacity_);
    out.reserve(static_cast<std::size_t>(retained));
    for (std::uint64_t e = total - retained; e < total; ++e) {
      const std::size_t slot = static_cast<std::size_t>(e % capacity_);
      DriftEvent ev;
      if (read_slot(slot, ev)) out.push_back(std::move(ev));
      // A slot that keeps changing mid-read is being overwritten by newer
      // events; dropping it keeps the snapshot coherent.
    }
    return out;
  }

  void reset() {
    if constexpr (!kObsCompiled) return;
    events_.store(0, std::memory_order_release);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> sample_index{0};
    std::atomic<double> statistic{0.0};
    std::atomic<double> theta_drift{0.0};
    std::atomic<std::uint32_t> window_span{0};
    std::atomic<std::uint8_t> action{0};
    std::atomic<bool> completed{false};
    std::atomic<std::uint64_t> recovery_samples{0};
    std::atomic<bool> has_distances{false};
  };

  /// Seqlock read of one slot; false after repeated torn reads.
  bool read_slot(std::size_t slot, DriftEvent& ev) const {
    const Slot& s = slots_[slot];
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint64_t seq0 = s.seq.load(std::memory_order_acquire);
      if (seq0 % 2 != 0) continue;  // Mid-write; retry.
      ev.sample_index = s.sample_index.load(std::memory_order_relaxed);
      ev.statistic = s.statistic.load(std::memory_order_relaxed);
      ev.theta_drift = s.theta_drift.load(std::memory_order_relaxed);
      ev.window_span = s.window_span.load(std::memory_order_relaxed);
      ev.action = static_cast<RecoveryAction>(
          s.action.load(std::memory_order_relaxed));
      ev.completed = s.completed.load(std::memory_order_relaxed);
      ev.recovery_samples =
          s.recovery_samples.load(std::memory_order_relaxed);
      ev.per_label_distance.clear();
      if (s.has_distances.load(std::memory_order_relaxed)) {
        ev.per_label_distance.resize(num_labels_);
        for (std::size_t c = 0; c < num_labels_; ++c) {
          ev.per_label_distance[c] = distances_[slot * num_labels_ + c].load(
              std::memory_order_relaxed);
        }
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) == seq0) return true;
    }
    return false;
  }

  std::size_t capacity_;
  std::size_t num_labels_;
  std::vector<Slot> slots_;
  std::vector<std::atomic<double>> distances_;
  std::atomic<std::uint64_t> events_{0};
};

}  // namespace edgedrift::obs
