// DDM — Drift Detection Method (Gama et al., SBIA 2004).
//
// Monitors the discriminative model's error rate p_t with standard deviation
// s_t = sqrt(p_t (1 - p_t) / t). It remembers the minimum of p + s seen so
// far and raises a warning when p + s > p_min + 2 s_min and a drift when
// p + s > p_min + 3 s_min. The paper classifies DDM as an error-rate-based
// method needing labeled data (Section 2.2.2) — included here as a
// reference baseline and for the detector-ensemble extension.
#pragma once

#include <cstddef>

#include "edgedrift/drift/detector.hpp"

namespace edgedrift::drift {

/// DDM tunables.
struct DdmConfig {
  double warning_factor = 2.0;  ///< Warning at p_min + factor * s_min.
  double drift_factor = 3.0;    ///< Drift at p_min + factor * s_min.
  std::size_t min_samples = 30; ///< No decision before this many samples.
};

/// Classic error-rate drift detector.
class Ddm : public Detector {
 public:
  explicit Ddm(DdmConfig config = {});

  Detection observe(const Observation& obs) override;
  void reset() override;
  std::size_t memory_bytes() const override { return sizeof(*this); }
  std::string_view name() const override { return "ddm"; }

  double error_rate() const;
  std::size_t samples() const { return samples_; }

 private:
  DdmConfig config_;
  std::size_t samples_ = 0;
  std::size_t errors_ = 0;
  double min_p_plus_s_ = 0.0;
  double min_p_ = 0.0;
  double min_s_ = 0.0;
  bool has_min_ = false;
};

}  // namespace edgedrift::drift
