// Multi-window ensemble of the proposed detector — the extension the paper
// names as future work ("a combination of multiple detection models with
// different window sizes to address more complicated concept drift
// behaviors", Section 6).
//
// Each member is a full CentroidDetector with its own window size; the
// ensemble fires according to a vote policy. Small windows catch sudden
// drifts early; large windows resist the oscillation of gradual and
// reoccurring drifts (Section 5.2's discussion) — the ensemble gets both.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "edgedrift/drift/centroid_detector.hpp"

namespace edgedrift::drift {

/// How member votes combine into an ensemble decision.
enum class VotePolicy {
  kAny,       ///< Drift if any member fires (lowest latency).
  kMajority,  ///< Drift if more than half of the members fire.
  kAll,       ///< Drift only when every member fires (lowest false rate).
};

/// Ensemble of centroid detectors with different window sizes.
class MultiWindowDetector : public Detector {
 public:
  /// One member per entry of `window_sizes`, each cloned from `base` with
  /// the window size overridden.
  MultiWindowDetector(CentroidDetectorConfig base,
                      std::span<const std::size_t> window_sizes,
                      VotePolicy policy = VotePolicy::kMajority);

  /// Calibrates every member on the same training data.
  void calibrate(const linalg::Matrix& x,
                 std::span<const int> labels) override;

  std::size_t members() const { return members_.size(); }
  const CentroidDetector& member(std::size_t i) const { return *members_[i]; }
  /// Mutable member access (re-arming after model reconstruction).
  CentroidDetector& member_mutable(std::size_t i) { return *members_[i]; }
  VotePolicy policy() const { return policy_; }

  /// Members whose most recent window closed with a drift verdict.
  std::size_t last_votes() const { return last_votes_; }

  /// Clears the latched member votes without touching member calibration
  /// (used after members were individually re-armed).
  void clear_votes();

  // Detector interface -------------------------------------------------
  Detection observe(const Observation& obs) override;
  void reset() override;
  void rebuild_reference(const linalg::Matrix& x) override;
  void set_anomaly_gate(double theta_error) override;
  /// Rearms every member to the rebuilt coordinates and clears the latched
  /// votes, matching the per-member recovery of the ensemble extension.
  void rearm(const linalg::Matrix& centroids,
             std::span<const std::size_t> counts,
             double theta_drift) override;
  std::size_t memory_bytes() const override;
  std::string_view name() const override { return "multi-window"; }

 private:
  bool vote_passes(std::size_t votes) const;

  std::vector<std::unique_ptr<CentroidDetector>> members_;
  std::vector<bool> member_fired_;  ///< Latched per member until ensemble fires.
  VotePolicy policy_;
  std::size_t last_votes_ = 0;
};

}  // namespace edgedrift::drift
