// KSWIN — Kolmogorov–Smirnov Windowing (Raab et al., 2020).
//
// Keeps a sliding window of the last `window_size` scalar observations
// (here: anomaly scores or any univariate feature). For each new sample,
// the most recent `stat_size` values are KS-tested against a uniform random
// subsample of the older part of the window; drift fires when the KS
// statistic exceeds the alpha-derived critical value.
//
// Included as an extension baseline: unlike the proposed method it buffers
// `window_size` scalars (still far below the batch detectors' B x D
// buffers), and unlike DDM it needs no labels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "edgedrift/drift/detector.hpp"
#include "edgedrift/util/rng.hpp"

namespace edgedrift::drift {

/// KSWIN tunables (defaults follow the original paper / river).
struct KswinConfig {
  std::size_t window_size = 100;  ///< Sliding-window length.
  std::size_t stat_size = 30;     ///< Recent-slice length for the KS test.
  double alpha = 0.005;           ///< Significance of the KS test.
  bool use_anomaly_score = true;  ///< Feed scores instead of 0/1 errors.
  std::uint64_t seed = 3;
};

/// Sliding-window Kolmogorov–Smirnov drift detector.
class Kswin : public Detector {
 public:
  explicit Kswin(KswinConfig config = {});

  Detection observe(const Observation& obs) override;
  void reset() override;
  std::size_t memory_bytes() const override;
  std::string_view name() const override { return "kswin"; }

  /// Feeds a raw scalar (exposed for tests and scalar streams).
  bool insert(double value);

  std::size_t window_fill() const { return window_.size(); }
  double last_ks_statistic() const { return last_stat_; }

 private:
  static double ks_statistic(std::vector<double> a, std::vector<double> b);

  KswinConfig config_;
  std::deque<double> window_;
  util::Rng rng_;
  double threshold_ = 0.0;
  double last_stat_ = 0.0;
};

}  // namespace edgedrift::drift
