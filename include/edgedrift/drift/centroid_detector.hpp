// The proposed detector (paper Algorithm 1).
//
// State per label: a trained centroid (frozen at calibration) and a recent
// test centroid updated by a running mean. A window opens when a sample's
// anomaly score reaches theta_error; for the next W samples the recent
// centroid of each predicted label absorbs the sample; when the window
// closes, drift fires iff
//   dist = sum_c sum_d |cor[c][d] - train_cor[c][d]|  >=  theta_drift.
//
// Everything is O(C*D) memory and O(C*D) work per sample — no sample is
// ever stored, which is the paper's entire memory argument (Table 4).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/drift/detector.hpp"
#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::drift {

/// Tunables of the proposed centroid detector.
struct CentroidDetectorConfig {
  std::size_t num_labels = 0;    ///< C.
  std::size_t dim = 0;           ///< D.
  std::size_t window_size = 100; ///< W.
  double theta_error = 0.0;      ///< Anomaly gate (Algorithm 1 line 8).
  double theta_drift = 0.0;      ///< Distance threshold; usually from Eq. 1.
  double z = 1.0;                ///< Eq. 1 tuning parameter for calibrate().

  /// 0 keeps the paper's exact running mean. A value in (0, 1) switches the
  /// recent-centroid update to an EWMA, the "assign a higher weight to a
  /// newer sample" variant Section 3.2 mentions.
  double ewma_decay = 0.0;

  /// Count assigned to each recent centroid at calibration. The paper's
  /// pseudocode carries the training counts into `num`, which makes recent
  /// centroids sluggish in long streams; a smaller prior (e.g. the window
  /// size) makes each window more responsive. Negative = use training counts.
  long initial_count = -1;
};

/// Fully sequential centroid-displacement drift detector (the proposal).
class CentroidDetector : public Detector {
 public:
  explicit CentroidDetector(CentroidDetectorConfig config);

  /// Calibrates from labeled training data: computes trained centroids,
  /// per-label counts, and theta_drift via Equation 1 (unless the config
  /// already fixed theta_drift > 0). Also snapshots the recent centroids to
  /// the trained ones.
  void calibrate(const linalg::Matrix& x,
                 std::span<const int> labels) override;

  /// Calibrates from precomputed centroids/counts plus the distance array of
  /// Equation 1 (used when labels come from clustering).
  void calibrate_from_centroids(const linalg::Matrix& centroids,
                                std::span<const std::size_t> counts,
                                std::span<const double> distances);

  // Detector interface -------------------------------------------------
  Detection observe(const Observation& obs) override;
  void reset() override;
  void rebuild_reference(const linalg::Matrix& x) override;
  void set_anomaly_gate(double theta_error) override {
    config_.theta_error = theta_error;
  }
  const linalg::Matrix* reconstruction_seed() const override {
    return &recent_;
  }
  const linalg::Matrix* reference_centroids() const override {
    return &trained_;
  }
  std::size_t memory_bytes() const override;
  std::string_view name() const override { return "proposed"; }

  // Introspection ------------------------------------------------------
  const CentroidDetectorConfig& config() const { return config_; }
  double theta_drift() const { return theta_drift_; }
  bool window_open() const { return check_; }
  std::size_t window_position() const { return win_; }
  double last_distance() const { return last_distance_; }
  const linalg::Matrix& trained_centroids() const { return trained_; }
  const linalg::Matrix& recent_centroids() const { return recent_; }
  std::span<const std::size_t> counts() const { return counts_; }

  /// Re-anchors the trained centroids to the given matrix (used after model
  /// reconstruction: the rebuilt coordinates become the new reference) and
  /// re-arms the detector.
  void rearm(const linalg::Matrix& new_trained_centroids,
             std::span<const std::size_t> counts,
             double new_theta_drift) override;

  std::span<const std::size_t> calibrated_counts() const {
    return calibrated_counts_;
  }

  /// Drift localization: per-label L1 displacement between the recent and
  /// trained centroid (the per-label terms of Algorithm 1's `dist`).
  /// `out` must have length num_labels.
  void per_label_distances(std::span<double> out) const;

  /// Drift localization: the `k` dimensions contributing the largest
  /// summed |recent - trained| displacement across labels, most-displaced
  /// first. A deployment diagnostic: tells the operator *which features*
  /// moved, at zero extra state.
  std::vector<std::size_t> top_drifted_dimensions(std::size_t k) const;

  /// Restores full calibrated state (deserialization path).
  void restore(const linalg::Matrix& trained, const linalg::Matrix& recent,
               std::span<const std::size_t> counts,
               std::span<const std::size_t> calibrated_counts,
               double theta_drift);

 private:
  double distance_sum() const;

  CentroidDetectorConfig config_;
  double theta_drift_ = 0.0;
  linalg::Matrix trained_;  ///< C x D, frozen reference.
  linalg::Matrix recent_;   ///< C x D, running per-label test centroids.
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> calibrated_counts_;
  bool calibrated_ = false;
  bool check_ = false;
  std::size_t win_ = 0;
  double last_distance_ = 0.0;

  // calibrate() scratch, reused across re-calibrations (a recovery may
  // calibrate many times over a long stream).
  std::vector<std::size_t> calib_counts_scratch_;
  std::vector<double> calib_distances_scratch_;
};

}  // namespace edgedrift::drift
