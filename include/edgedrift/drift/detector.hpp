// Common interface for concept-drift detectors.
//
// The library hosts two detector families, mirroring Section 2.2.2 of the
// paper: distribution-based detectors (the proposed centroid method,
// QuantTree, SPLL) consume feature vectors; error-rate-based detectors
// (DDM, ADWIN, Page–Hinkley) consume the discriminative model's mistake
// stream. One Observation struct carries both signals so the evaluation
// harness can drive any detector uniformly.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::drift {

/// One streamed sample as seen by a detector.
struct Observation {
  std::span<const double> x;  ///< Feature vector (distribution detectors).
  int predicted_label = -1;   ///< Discriminative model's prediction.
  double anomaly_score = 0.0; ///< Reconstruction error of that prediction.
  bool error = false;         ///< True if the prediction was wrong
                              ///< (error-rate detectors; needs labels).
};

/// Outcome of one observe() call.
struct Detection {
  bool drift = false;    ///< A concept drift fired on this sample.
  bool warning = false;  ///< Early-warning level (DDM-style).
  double statistic = 0.0;       ///< Detector statistic, when emitted.
  bool statistic_valid = false; ///< Batch detectors only emit at batch ends.
};

/// Abstract streaming drift detector.
///
/// Beyond the observe/reset pair, the interface carries the uniform
/// lifecycle hooks core::Pipeline drives every detector through:
/// calibrate() before streaming, set_anomaly_gate() to propagate the
/// model-derived theta_error, rearm() after a model recovery, and the
/// reference-data hooks batch detectors use to re-fit post-drift. Every
/// hook has a sensible default so scalar detectors (DDM, ADWIN, ...) stay
/// one-override implementations.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Feeds one sample; returns whether a drift (or warning) fired.
  virtual Detection observe(const Observation& obs) = 0;

  /// Clears streaming state after the model has been retrained, so detection
  /// restarts against the post-drift concept.
  virtual void reset() = 0;

  /// Calibrates from labeled training data before streaming begins. The
  /// default hands the features to rebuild_reference() — right for batch
  /// detectors that fit an unlabeled reference, a no-op for scalar detectors
  /// that self-calibrate on the stream.
  virtual void calibrate(const linalg::Matrix& x,
                         std::span<const int> labels) {
    (void)labels;
    rebuild_reference(x);
  }

  /// Rebuilds the detector's reference statistics from post-drift data.
  /// Batch detectors re-fit their histogram/mixture; the default is a no-op
  /// for detectors whose reference is re-calibrated externally.
  virtual void rebuild_reference(const linalg::Matrix& x) { (void)x; }

  /// Propagates the anomaly gate (Algorithm 1's theta_error) calibrated by
  /// the discriminative model. Default: ignored — most detectors have no
  /// gate.
  virtual void set_anomaly_gate(double theta_error) { (void)theta_error; }

  /// Re-anchors the detector after a model recovery: `centroids`/`counts`
  /// are the rebuilt per-label coordinates, `theta_drift` the Eq. 1
  /// threshold recomputed over the recovery samples (<= 0 keeps the old
  /// one). Default: plain reset() for detectors without centroid state.
  virtual void rearm(const linalg::Matrix& centroids,
                     std::span<const std::size_t> counts, double theta_drift) {
    (void)centroids;
    (void)counts;
    (void)theta_drift;
    reset();
  }

  /// True when detection cannot resume after a recovery until
  /// rebuild_reference() has been fed a fresh window of post-drift samples
  /// (QuantTree, SPLL). The driver collects reference_rows() rows.
  virtual bool needs_reference_data() const { return false; }

  /// Minimum rows a post-recovery reference window must hold. Only
  /// meaningful when needs_reference_data() is true.
  virtual std::size_t reference_rows() const { return 0; }

  /// Best current per-label centroid estimate of the post-drift concept —
  /// the seed for model reconstruction. nullptr when the detector tracks no
  /// centroids (the driver falls back to its own running estimate).
  virtual const linalg::Matrix* reconstruction_seed() const { return nullptr; }

  /// Frozen per-label reference centroids, used to re-align rebuilt label
  /// identities after a reconstruction. nullptr when untracked.
  virtual const linalg::Matrix* reference_centroids() const { return nullptr; }

  /// Bytes of detector state — the quantity Table 4 of the paper compares.
  virtual std::size_t memory_bytes() const = 0;

  /// Stable identifier ("proposed", "quanttree", ...).
  virtual std::string_view name() const = 0;
};

}  // namespace edgedrift::drift
