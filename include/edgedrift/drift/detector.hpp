// Common interface for concept-drift detectors.
//
// The library hosts two detector families, mirroring Section 2.2.2 of the
// paper: distribution-based detectors (the proposed centroid method,
// QuantTree, SPLL) consume feature vectors; error-rate-based detectors
// (DDM, ADWIN, Page–Hinkley) consume the discriminative model's mistake
// stream. One Observation struct carries both signals so the evaluation
// harness can drive any detector uniformly.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::drift {

/// One streamed sample as seen by a detector.
struct Observation {
  std::span<const double> x;  ///< Feature vector (distribution detectors).
  int predicted_label = -1;   ///< Discriminative model's prediction.
  double anomaly_score = 0.0; ///< Reconstruction error of that prediction.
  bool error = false;         ///< True if the prediction was wrong
                              ///< (error-rate detectors; needs labels).
};

/// Outcome of one observe() call.
struct Detection {
  bool drift = false;    ///< A concept drift fired on this sample.
  bool warning = false;  ///< Early-warning level (DDM-style).
  double statistic = 0.0;       ///< Detector statistic, when emitted.
  bool statistic_valid = false; ///< Batch detectors only emit at batch ends.
};

/// Abstract streaming drift detector.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Feeds one sample; returns whether a drift (or warning) fired.
  virtual Detection observe(const Observation& obs) = 0;

  /// Clears streaming state after the model has been retrained, so detection
  /// restarts against the post-drift concept.
  virtual void reset() = 0;

  /// Rebuilds the detector's reference statistics from post-drift data.
  /// Batch detectors re-fit their histogram/mixture; the default is a no-op
  /// for detectors whose reference is re-calibrated externally.
  virtual void rebuild_reference(const linalg::Matrix& x) { (void)x; }

  /// Bytes of detector state — the quantity Table 4 of the paper compares.
  virtual std::size_t memory_bytes() const = 0;

  /// Stable identifier ("proposed", "quanttree", ...).
  virtual std::string_view name() const = 0;
};

}  // namespace edgedrift::drift
