// Page–Hinkley test: classic sequential change detection over a scalar
// stream (here the anomaly score or the error indicator). Accumulates the
// signed deviation from the running mean and fires when the accumulator
// rises more than `lambda` above its historical minimum. O(1) state — the
// cheapest detector in the library, used by the ablation benches as a
// lower-bound baseline.
#pragma once

#include <cstddef>

#include "edgedrift/drift/detector.hpp"

namespace edgedrift::drift {

/// Page–Hinkley tunables.
struct PageHinkleyConfig {
  double delta = 0.005;   ///< Insensitivity margin.
  double lambda = 50.0;   ///< Detection threshold on m_t - min(m).
  double alpha = 1.0;     ///< Optional fading of the accumulator (1 = none).
  std::size_t min_samples = 30;
  bool use_anomaly_score = true;  ///< Feed scores instead of 0/1 errors.
};

/// Sequential Page–Hinkley detector.
class PageHinkley : public Detector {
 public:
  explicit PageHinkley(PageHinkleyConfig config = {});

  Detection observe(const Observation& obs) override;
  void reset() override;
  std::size_t memory_bytes() const override { return sizeof(*this); }
  std::string_view name() const override { return "page-hinkley"; }

  /// Feeds a raw scalar (exposed for tests and scalar streams).
  bool insert(double value);

 private:
  PageHinkleyConfig config_;
  std::size_t samples_ = 0;
  double running_mean_ = 0.0;
  double cumulative_ = 0.0;
  double minimum_ = 0.0;
};

}  // namespace edgedrift::drift
