// Threshold calibration (Equation 1 of the paper):
//   theta_drift = mu + z * sigma
// over the array of training-sample-to-own-centroid distances, with
// population (1/N) statistics and z a tuning parameter (z = 1 in the paper).
#pragma once

#include <span>

#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::drift {

/// mu + z * sigma of `distances` (population standard deviation).
double drift_threshold_from_distances(std::span<const double> distances,
                                      double z);

/// Convenience: computes per-sample L1 distances between each row of X and
/// the centroid of its (predicted or true) label, then applies Equation 1.
/// `centroids` is C x D; labels must be in [0, C).
double calibrate_drift_threshold(const linalg::Matrix& x,
                                 std::span<const int> labels,
                                 const linalg::Matrix& centroids, double z);

}  // namespace edgedrift::drift
