// Discriminative-model reconstruction after a detected drift
// (paper Algorithms 2, 3 and 4).
//
// Reconstruction is a four-phase pass over the next N streamed samples,
// fully sequential (no sample buffer):
//   phase 1, count < N_search : Init_Coord — greedily re-place the C label
//            coordinates so their summed pairwise L1 distance is maximal
//            (a sequential k-means++-style spreading, Algorithm 3);
//   phase 2, count < N_update : Update_Coord — sequential k-means refinement
//            of the coordinates (Algorithm 4);
//   phase 3, count < N/2      : train the OS-ELM instance of the
//            nearest-coordinate label on each sample;
//   phase 4, count < N        : train the instance chosen by the model's own
//            prediction (self-labeling).
// The paper's pseudocode writes the phases as chained `if count < ...`
// tests; we implement them as exclusive phases, which is the reading
// consistent with Section 3.3's prose and with the per-stage timing
// breakdown of Table 6.
//
// While running, the reconstructor also accumulates the Equation 1 distance
// statistics of phase 3/4 samples so the detector can be re-armed with a
// threshold matched to the new concept.
#pragma once

#include <cstddef>
#include <span>

#include "edgedrift/cluster/sequential_kmeans.hpp"
#include "edgedrift/linalg/workspace.hpp"
#include "edgedrift/model/multi_instance.hpp"

namespace edgedrift::drift {

/// Phase lengths of Algorithm 2.
struct ReconstructorConfig {
  std::size_t n_search = 20;   ///< N_search: samples spent spreading coords.
  std::size_t n_update = 120;  ///< N_update: samples spent refining coords.
  std::size_t n_total = 600;   ///< N: samples until reconstruction finishes.
};

/// Current phase of a running reconstruction.
enum class ReconstructionPhase {
  kIdle,          ///< Not reconstructing.
  kSearchCoords,  ///< Algorithm 3 (Init_Coord).
  kUpdateCoords,  ///< Algorithm 4 (Update_Coord).
  kTrainNearest,  ///< Algorithm 2 lines 8-9.
  kTrainPredict,  ///< Algorithm 2 lines 11-12.
};

/// Streaming model reconstruction driver.
class Reconstructor {
 public:
  Reconstructor(ReconstructorConfig config, std::size_t num_labels,
                std::size_t dim);

  /// Starts a reconstruction: resets every model instance to the sequential
  /// prior and seeds the coordinate store from `seed_coords` (typically the
  /// detector's recent test centroids) with zero counts.
  void begin(model::MultiInstanceModel& model,
             const linalg::Matrix& seed_coords);

  /// Consumes one sample (Algorithm 2 body). Returns true while the
  /// reconstruction is still running, false once count reached N — mirroring
  /// Reconstruct_Model()'s return value feeding Algorithm 1's `drift` flag.
  bool step(std::span<const double> x, model::MultiInstanceModel& model);

  /// Chunked variant of step() for the training phases (3 and 4) only:
  /// consumes up to x.rows() samples in one pass and returns how many were
  /// taken (0 = caller must fall back to per-sample step(), i.e. the
  /// coordinate phases, the finishing sample, or a tail of one row).
  /// `h` must be the model's hidden activations of the rows of `x`
  /// (score_batch_from_hidden contract); `labels` and `preds` are caller
  /// scratch of at least x.rows() entries. A chunk never straddles a phase
  /// boundary and never performs the finishing sample, so completion always
  /// flows through step(). Semantics vs the sequential loop: phase-3 winner
  /// labels come from the frozen coordinates (exact — coordinates do not
  /// move during training phases); phase-4 self-labels are predicted for the
  /// whole chunk against the pre-chunk model (the chunked-training
  /// approximation); the Equation 1 Welford statistics accumulate per row in
  /// stream order against the frozen coordinates (exact). Bucketed rank-k
  /// training per winning instance replaces the per-sample rank-1 steps —
  /// decision-equivalent, not bit-identical; callers gate it behind
  /// PipelineConfig::train_chunk > 1. `stats` (optional) accumulates what
  /// the bucketed update did for the obs counters.
  std::size_t train_chunk(linalg::ConstMatrixView x, linalg::ConstMatrixView h,
                          model::MultiInstanceModel& model,
                          model::BatchWorkspace& ws,
                          std::span<model::Prediction> preds,
                          std::span<std::size_t> labels,
                          model::ChunkTrainStats* stats);

  bool active() const { return phase_ != ReconstructionPhase::kIdle; }
  ReconstructionPhase phase() const { return phase_; }
  std::size_t count() const { return count_; }
  const ReconstructorConfig& config() const { return config_; }

  /// Rebuilt label coordinates (valid during/after a reconstruction).
  const cluster::SequentialKMeans& coords() const { return coords_; }
  cluster::SequentialKMeans& coords_mutable() { return coords_; }

  /// Equation 1 threshold recomputed over the training-phase samples of the
  /// finished reconstruction; 0 when no sample contributed.
  double suggested_theta_drift(double z) const;

  /// Bytes of reconstruction state.
  std::size_t memory_bytes() const;

 private:
  void update_phase();

  ReconstructorConfig config_;
  cluster::SequentialKMeans coords_;
  ReconstructionPhase phase_ = ReconstructionPhase::kIdle;
  std::size_t count_ = 0;
  // Scratch for the self-labeling predictions of phase 4. The
  // reconstructor is single-threaded per pipeline, so one workspace keeps
  // step() allocation-free.
  linalg::KernelWorkspace ws_;

  // Welford accumulator over sample-to-own-coordinate L1 distances.
  std::size_t dist_count_ = 0;
  double dist_mean_ = 0.0;
  double dist_m2_ = 0.0;
};

}  // namespace edgedrift::drift
