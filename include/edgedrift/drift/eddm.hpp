// EDDM — Early Drift Detection Method (Baena-García et al., 2006).
//
// Where DDM watches the error *rate*, EDDM watches the *distance between
// consecutive errors*: under a stable concept the mean gap between
// mistakes grows; when a (especially gradual) drift begins, errors bunch
// up and the gap statistic p' + 2 s' falls relative to its historical
// maximum. Warning fires when (p' + 2s') / (p'_max + 2s'_max) < beta_w,
// drift when it falls below beta_d. Extension beyond the paper's baseline
// set; useful against gradual drifts that DDM reacts to slowly.
#pragma once

#include <cstddef>

#include "edgedrift/drift/detector.hpp"

namespace edgedrift::drift {

/// EDDM tunables (defaults follow the original paper).
struct EddmConfig {
  double warning_ratio = 0.95;  ///< beta_w.
  double drift_ratio = 0.90;    ///< beta_d.
  std::size_t min_errors = 30;  ///< No decision before this many errors.
};

/// Error-distance drift detector.
class Eddm : public Detector {
 public:
  explicit Eddm(EddmConfig config = {});

  Detection observe(const Observation& obs) override;
  void reset() override;
  std::size_t memory_bytes() const override { return sizeof(*this); }
  std::string_view name() const override { return "eddm"; }

  double mean_gap() const { return gap_mean_; }
  std::size_t errors() const { return errors_; }

 private:
  EddmConfig config_;
  std::size_t samples_ = 0;
  std::size_t errors_ = 0;
  std::size_t last_error_at_ = 0;
  double gap_mean_ = 0.0;
  double gap_m2_ = 0.0;  ///< Welford accumulator.
  double best_score_ = 0.0;  ///< max of (p' + 2 s').
};

}  // namespace edgedrift::drift
