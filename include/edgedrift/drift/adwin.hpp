// ADWIN — ADaptive WINdowing (Bifet & Gavaldà, SDM 2007).
//
// Maintains a variable-length window over a univariate signal (here the
// error indicator or anomaly score) compressed into exponential-histogram
// buckets. Whenever the means of two adjacent sub-windows differ by more
// than the Hoeffding-style cut epsilon, the older sub-window is dropped and
// a drift is reported. Memory is O(M log(n/M)) — far below batch detectors
// but above the O(C*D) constant of the proposed method when the window must
// be long.
#pragma once

#include <cstddef>
#include <deque>

#include "edgedrift/drift/detector.hpp"

namespace edgedrift::drift {

/// ADWIN tunables.
struct AdwinConfig {
  double delta = 0.002;          ///< Confidence parameter.
  std::size_t max_buckets = 5;   ///< Buckets per exponential row (M).
  std::size_t min_window = 10;   ///< No cut below this many samples.
  std::size_t check_every = 4;   ///< Run the cut scan every k-th insert.
  bool use_anomaly_score = false;///< Feed scores instead of 0/1 errors.
};

/// Adaptive-window drift detector over a scalar stream.
class Adwin : public Detector {
 public:
  explicit Adwin(AdwinConfig config = {});

  Detection observe(const Observation& obs) override;
  void reset() override;
  std::size_t memory_bytes() const override;
  std::string_view name() const override { return "adwin"; }

  /// Inserts a raw scalar (exposed for tests and scalar streams).
  bool insert(double value);

  double mean() const;
  std::size_t window_length() const { return total_count_; }

 private:
  struct Bucket {
    double sum = 0.0;
    std::size_t count = 0;  ///< Always a power of two: 2^row.
  };

  void compress();
  bool detect_cut();

  AdwinConfig config_;
  // rows_[r] holds buckets of capacity 2^r, newest first within a row.
  std::vector<std::deque<Bucket>> rows_;
  double total_sum_ = 0.0;
  std::size_t total_count_ = 0;
  std::size_t inserts_since_check_ = 0;
};

}  // namespace edgedrift::drift
