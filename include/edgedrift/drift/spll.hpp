// SPLL (Kuncheva, 2013): semi-parametric log-likelihood change detection.
//
// The reference window is clustered with k-means; the clusters are modeled
// as a Gaussian mixture with a shared (pooled) diagonal covariance. Each
// test sample is scored by its squared Mahalanobis distance to the nearest
// component, and the batch statistic is the mean score. The threshold is
// calibrated by bootstrap: score many size-B resamples of the reference
// window and take a high quantile.
//
// This is the paper's second batch baseline — and its most memory-hungry
// method (Table 4): it retains the full reference window (for re-fitting
// after drift) in addition to the B x D test buffer, and runs k-means at
// fit time (the execution-time cost Table 5 charges it for).
#pragma once

#include <cstddef>
#include <cstdint>

#include "edgedrift/cluster/gmm.hpp"
#include "edgedrift/drift/detector.hpp"
#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::drift {

/// SPLL tunables.
struct SpllConfig {
  std::size_t num_clusters = 3;  ///< k of the k-means stage.
  std::size_t batch_size = 480;  ///< B (paper: 480 / 235).
  double quantile = 0.99;        ///< Bootstrap quantile for the threshold.
  std::size_t bootstrap_trials = 400;
  std::uint64_t seed = 11;
};

/// Semi-parametric log-likelihood batch change detector.
class Spll : public Detector {
 public:
  explicit Spll(SpllConfig config);

  /// Clusters the reference window, fits the shared-covariance mixture and
  /// bootstraps the detection threshold. The window is retained.
  void fit(const linalg::Matrix& reference);

  /// Mean nearest-component Mahalanobis^2 of an explicit batch.
  double statistic(const linalg::Matrix& batch) const;

  double threshold() const { return threshold_; }
  bool fitted() const { return fitted_; }
  const cluster::DiagonalGmm& mixture() const { return gmm_; }

  // Detector interface -------------------------------------------------
  Detection observe(const Observation& obs) override;
  void reset() override;
  void rebuild_reference(const linalg::Matrix& x) override { fit(x); }
  bool needs_reference_data() const override { return true; }
  std::size_t reference_rows() const override { return config_.batch_size; }
  std::size_t memory_bytes() const override;
  std::string_view name() const override { return "spll"; }

 private:
  SpllConfig config_;
  cluster::DiagonalGmm gmm_;
  linalg::Matrix reference_;  ///< Retained reference window.
  double threshold_ = 0.0;
  bool fitted_ = false;

  linalg::Matrix buffer_;  ///< B x D test-batch buffer.
  std::size_t buffered_ = 0;
};

}  // namespace edgedrift::drift
