// QuantTree (Boracchi et al., ICML 2018): histogram-based change detection
// for multivariate streams.
//
// Construction recursively splits the reference data with axis-aligned cuts
// so each of the K bins holds the same fraction of reference points; by the
// probability-integral argument of the paper, the distribution of the test
// statistic then depends only on (B, K), not on the data distribution, so
// the detection threshold can be calibrated once by Monte Carlo over
// multinomial draws.
//
// This is the paper's first batch baseline: it buffers B samples per test
// (the memory cost Table 4 charges it for) and emits one Pearson statistic
// per full batch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "edgedrift/drift/detector.hpp"
#include "edgedrift/linalg/matrix.hpp"

namespace edgedrift::drift {

/// QuantTree tunables.
struct QuantTreeConfig {
  std::size_t num_bins = 32;     ///< K (paper: 32 for NSL-KDD, 16 for fan).
  std::size_t batch_size = 480;  ///< B (paper: 480 / 235).
  double alpha = 0.01;           ///< False-positive rate of the threshold.
  std::size_t monte_carlo_trials = 4000;
  std::uint64_t seed = 7;
};

/// Histogram change detector with a distribution-free threshold.
class QuantTree : public Detector {
 public:
  explicit QuantTree(QuantTreeConfig config);

  /// Builds the tree from reference (pre-drift) data and calibrates the
  /// Pearson-statistic threshold by Monte Carlo.
  void fit(const linalg::Matrix& reference);

  /// Bin index of a single sample (exposed for tests).
  std::size_t bin_of(std::span<const double> x) const;

  /// Pearson statistic of an explicit batch (exposed for tests/benches).
  double statistic(const linalg::Matrix& batch) const;

  double threshold() const { return threshold_; }
  bool fitted() const { return fitted_; }
  std::size_t buffered() const { return buffered_; }

  // Detector interface -------------------------------------------------
  Detection observe(const Observation& obs) override;
  void reset() override;
  void rebuild_reference(const linalg::Matrix& x) override { fit(x); }
  bool needs_reference_data() const override { return true; }
  std::size_t reference_rows() const override { return config_.batch_size; }
  std::size_t memory_bytes() const override;
  std::string_view name() const override { return "quanttree"; }

 private:
  struct Split {
    std::size_t dim = 0;     ///< Axis of the cut.
    double threshold = 0.0;  ///< Cut position.
    bool low_side = true;    ///< Bin takes x[dim] <= threshold if true.
  };

  void calibrate_threshold();
  double pearson_statistic(std::span<const std::size_t> counts,
                           std::size_t batch_rows) const;

  QuantTreeConfig config_;
  std::vector<Split> splits_;       ///< K-1 cuts; last bin is the remainder.
  std::vector<double> bin_probs_;   ///< Target probabilities (uniform 1/K).
  double threshold_ = 0.0;
  bool fitted_ = false;

  linalg::Matrix buffer_;           ///< B x D test-batch buffer.
  std::size_t buffered_ = 0;
  std::vector<std::size_t> counts_; ///< Bin counters reused per batch.
};

}  // namespace edgedrift::drift
