// Detector factory: one spec struct naming any drift detector in the
// library, and a constructor turning it into a drift::Detector. This is how
// core::Pipeline stays detector-agnostic — the facade programs against the
// Detector interface and lets the spec decide which of the nine
// implementations (Section 2.2.2's taxonomy plus the extensions) runs the
// detect-and-retrain loop.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "edgedrift/drift/adwin.hpp"
#include "edgedrift/drift/centroid_detector.hpp"
#include "edgedrift/drift/ddm.hpp"
#include "edgedrift/drift/detector.hpp"
#include "edgedrift/drift/eddm.hpp"
#include "edgedrift/drift/kswin.hpp"
#include "edgedrift/drift/multi_window.hpp"
#include "edgedrift/drift/page_hinkley.hpp"
#include "edgedrift/drift/quanttree.hpp"
#include "edgedrift/drift/spll.hpp"

namespace edgedrift::drift {

/// Every detector family the library ships.
enum class DetectorKind {
  kCentroid,     ///< The paper's sequential centroid detector (Algorithm 1).
  kMultiWindow,  ///< Ensemble of centroid detectors (paper Section 6).
  kQuantTree,    ///< Batch histogram detector (Boracchi et al.).
  kSpll,         ///< Batch semi-parametric log-likelihood (Kuncheva).
  kDdm,          ///< Error-rate detector (Gama et al.; needs labels).
  kEddm,         ///< Error-distance detector (Baena-García et al.).
  kAdwin,        ///< Adaptive windowing (Bifet & Gavaldà).
  kKswin,        ///< Sliding-window KS test (Raab et al.).
  kPageHinkley,  ///< Sequential Page–Hinkley test.
};

/// All nine kinds, in a stable order (iteration by tests and examples).
inline constexpr DetectorKind kAllDetectorKinds[] = {
    DetectorKind::kCentroid,  DetectorKind::kMultiWindow,
    DetectorKind::kQuantTree, DetectorKind::kSpll,
    DetectorKind::kDdm,       DetectorKind::kEddm,
    DetectorKind::kAdwin,     DetectorKind::kKswin,
    DetectorKind::kPageHinkley,
};

/// Which detector to build, plus the per-kind tunables. Only the block
/// matching `kind` is read; the rest keep their defaults. The centroid
/// geometry (num_labels / dim / window / thresholds) is passed separately
/// at construction because the pipeline derives it from its own config.
struct DetectorSpec {
  DetectorKind kind = DetectorKind::kCentroid;

  QuantTreeConfig quanttree;
  SpllConfig spll;
  DdmConfig ddm;
  EddmConfig eddm;
  AdwinConfig adwin;
  KswinConfig kswin;
  PageHinkleyConfig page_hinkley;

  /// Member window sizes and vote policy of the kMultiWindow ensemble.
  std::vector<std::size_t> windows{50, 100, 200};
  VotePolicy vote_policy = VotePolicy::kMajority;
};

/// Builds the detector named by `spec`. `centroid_base` supplies the
/// geometry (labels, dim, window size, thresholds) for the centroid-family
/// kinds; the other kinds ignore it.
std::unique_ptr<Detector> make_detector(
    const DetectorSpec& spec, const CentroidDetectorConfig& centroid_base);

/// Stable lowercase identifier ("centroid", "quanttree", ...).
std::string_view kind_name(DetectorKind kind);

/// Inverse of kind_name; nullopt for unknown names.
std::optional<DetectorKind> kind_from_name(std::string_view name);

}  // namespace edgedrift::drift
