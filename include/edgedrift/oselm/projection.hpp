// The random hidden-layer projection of an ELM: h = g(x * A + b).
//
// In ELM the input weights A and biases b are drawn randomly once and never
// trained. Because of that, multiple OS-ELM instances (one per class label,
// Section 3.1 of the paper) can share a single projection — this is what
// makes the multi-instance model fit the Raspberry Pi Pico's 264 kB: the
// dominant d x h weight block is stored once.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/oselm/activation.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::oselm {

/// Immutable random projection shared by OS-ELM instances.
class Projection {
 public:
  /// Draws A ~ U(-scale, scale) of shape [input_dim, hidden_dim] and
  /// b ~ U(-scale, scale) of length hidden_dim.
  Projection(std::size_t input_dim, std::size_t hidden_dim, Activation act,
             util::Rng& rng, double scale = 1.0);

  /// Rebuilds a projection from explicit weights (deserialization path).
  Projection(linalg::Matrix alpha, std::vector<double> bias, Activation act);

  std::size_t input_dim() const { return alpha_.rows(); }
  std::size_t hidden_dim() const { return alpha_.cols(); }
  Activation activation() const { return act_; }

  /// h = g(x * A + b). `hidden` must have length hidden_dim().
  void hidden(std::span<const double> x, std::span<double> hidden) const;

  /// H = g(X * A + b) for a batch (rows are samples).
  linalg::Matrix hidden_batch(const linalg::Matrix& x) const;

  /// hidden_batch into a caller-provided matrix (resized if needed). Each
  /// row is bit-identical to hidden() on the same sample. Takes a row-block
  /// view, so a contiguous row range of a larger matrix projects without
  /// being copied out first.
  void hidden_batch_into(linalg::ConstMatrixView x, linalg::Matrix& h) const;

  /// Bytes of weight storage.
  std::size_t memory_bytes() const;

  // Weight access (persistence).
  const linalg::Matrix& alpha() const { return alpha_; }
  std::span<const double> bias() const { return bias_; }

 private:
  linalg::Matrix alpha_;
  std::vector<double> bias_;
  Activation act_;
};

using ProjectionPtr = std::shared_ptr<const Projection>;

/// Convenience factory returning a shared, immutable projection.
ProjectionPtr make_projection(std::size_t input_dim, std::size_t hidden_dim,
                              Activation act, util::Rng& rng,
                              double scale = 1.0);

}  // namespace edgedrift::oselm
