// The random hidden-layer projection of an ELM: h = g(x * A + b).
//
// In ELM the input weights A and biases b are drawn randomly once and never
// trained. Because of that, multiple OS-ELM instances (one per class label,
// Section 3.1 of the paper) can share a single projection — this is what
// makes the multi-instance model fit the Raspberry Pi Pico's 264 kB: the
// dominant d x h weight block is stored once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "edgedrift/linalg/gemm.hpp"
#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/oselm/activation.hpp"

namespace edgedrift::util {
class Rng;
}

namespace edgedrift::oselm {

/// Immutable random projection shared by OS-ELM instances.
class Projection {
 public:
  /// Draws A ~ U(-scale, scale) of shape [input_dim, hidden_dim] and
  /// b ~ U(-scale, scale) of length hidden_dim.
  Projection(std::size_t input_dim, std::size_t hidden_dim, Activation act,
             util::Rng& rng, double scale = 1.0);

  /// Rebuilds a projection from explicit weights (deserialization path).
  Projection(linalg::Matrix alpha, std::vector<double> bias, Activation act);

  std::size_t input_dim() const { return alpha_.rows(); }
  std::size_t hidden_dim() const { return alpha_.cols(); }
  Activation activation() const { return act_; }

  /// h = g(x * A + b). `hidden` must have length hidden_dim().
  void hidden(std::span<const double> x, std::span<double> hidden) const;

  /// H = g(X * A + b) for a batch (rows are samples).
  linalg::Matrix hidden_batch(const linalg::Matrix& x) const;

  /// hidden_batch into a caller-provided matrix (resized if needed). Each
  /// row is bit-identical to hidden() on the same sample. Takes a row-block
  /// view, so a contiguous row range of a larger matrix projects without
  /// being copied out first.
  void hidden_batch_into(linalg::ConstMatrixView x, linalg::Matrix& h) const;

  /// hidden_batch_into with alpha's GEMM panels prepacked by a prior
  /// pack_alpha(). Bit-identical to the plain overload; skips the per-call
  /// pack of alpha, which matters when the serving layer projects thousands
  /// of small mega-batches through one immutable projection.
  void hidden_batch_into(linalg::ConstMatrixView x, linalg::Matrix& h,
                         const linalg::PackedGemmB& packed_alpha) const;

  /// Packs alpha's GEMM panels into `out` for the packed hidden_batch_into
  /// overload. Valid as long as this projection is alive (alpha is
  /// immutable).
  void pack_alpha(linalg::PackedGemmB& out) const;

  /// Bytes of weight storage.
  std::size_t memory_bytes() const;

  // Weight access (persistence).
  const linalg::Matrix& alpha() const { return alpha_; }
  std::span<const double> bias() const { return bias_; }

  /// FNV-1a digest of (input_dim, hidden_dim, activation, alpha bytes, bias
  /// bytes), computed once at construction. Two projections with equal
  /// fingerprints produce bit-identical hidden() output for the same input,
  /// so the serving layer keys its cross-stream coalescing groups on this
  /// value: streams seeded from one template blob (seed_cold_from) or
  /// restored from the same checkpoint all land in the same group. The
  /// deserialization constructor recomputes the digest from the restored
  /// bytes, so the fingerprint survives checkpoint round trips by
  /// construction.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::uint64_t compute_fingerprint() const;

  linalg::Matrix alpha_;
  std::vector<double> bias_;
  Activation act_;
  std::uint64_t fingerprint_ = 0;
};

using ProjectionPtr = std::shared_ptr<const Projection>;

/// Convenience factory returning a shared, immutable projection.
ProjectionPtr make_projection(std::size_t input_dim, std::size_t hidden_dim,
                              Activation act, util::Rng& rng,
                              double scale = 1.0);

}  // namespace edgedrift::oselm
