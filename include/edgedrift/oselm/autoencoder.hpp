// OS-ELM autoencoder: the discriminative-model building block of the paper
// (Section 3.1). Targets equal inputs; the reconstruction error is the
// anomaly score used both for prediction (argmin across per-label instances)
// and for the theta_error gate of the drift detector (Algorithm 1, line 8).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/oselm/oselm.hpp"

namespace edgedrift::oselm {

/// An OS-ELM whose target is its own input.
class Autoencoder {
 public:
  /// Builds over a shared projection. reg_lambda / forgetting_factor as in
  /// OsElmConfig; output_dim is forced to the projection's input_dim.
  Autoencoder(ProjectionPtr projection, double reg_lambda = 1e-2,
              double forgetting_factor = 1.0);

  std::size_t input_dim() const { return net_.input_dim(); }
  std::size_t hidden_dim() const { return net_.hidden_dim(); }
  bool initialized() const { return net_.initialized(); }

  /// Batch initial training on rows of X.
  void init_train(const linalg::Matrix& x);

  /// Data-free init so training can proceed purely sequentially.
  void init_sequential() { net_.init_sequential(); }

  /// One sequential training step on sample x.
  void train(std::span<const double> x) { net_.train(x, x); }

  /// Sequential training step with a precomputed hidden activation of x
  /// (shared-hidden hot path: the ensemble projects once per sample and
  /// reuses `h` for scoring and training).
  void train_from_hidden(std::span<const double> h, std::span<const double> x) {
    net_.train_from_hidden(h, x);
  }

  /// Rank-k block training on a chunk of samples with precomputed hidden
  /// activations: one Woodbury P-update absorbs all rows (targets are the
  /// inputs themselves). Equivalent to row-by-row train_from_hidden() in
  /// exact arithmetic, not bit-identical — see OsElm::train_batch_from_hidden
  /// for the contract (beta_version bumps once; rank-1 replay invalid).
  void train_batch_from_hidden(const linalg::Matrix& h,
                               const linalg::Matrix& x) {
    net_.train_batch_from_hidden(h, x);
  }

  /// Pre-grows the rank-k block-training scratch for chunks of up to
  /// `max_rows` samples (allocation-free chunked training contract).
  void reserve_batch(std::size_t max_rows) { net_.reserve_batch(max_rows); }

  /// Mean squared reconstruction error of x — the anomaly score. The
  /// workspace overload is the allocation-free hot path; the convenience
  /// overload keeps the reconstruction on the stack.
  double score(std::span<const double> x, linalg::KernelWorkspace& ws) const;
  double score(std::span<const double> x) const;

  /// Anomaly score of x from its precomputed hidden activation. `recon` is
  /// caller scratch of length input_dim(). Bit-identical to score() when `h`
  /// equals this projection of x (same reconstruction chain, same MSE
  /// kernel).
  double score_from_hidden(std::span<const double> h,
                           std::span<const double> x,
                           std::span<double> recon) const;

  /// Writes the reconstruction of x into `out` (length input_dim()).
  void reconstruct(std::span<const double> x, std::span<double> out) const {
    net_.predict(x, out);
  }

  /// Resets trainable state, keeping the shared projection.
  void reset() { net_.reset(); }

  std::size_t samples_seen() const { return net_.samples_seen(); }

  const OsElm& net() const { return net_; }

  /// Restores trained state (deserialization path).
  void restore_state(linalg::Matrix beta, linalg::Matrix p,
                     std::size_t samples_seen) {
    net_.restore_state(std::move(beta), std::move(p), samples_seen);
  }

  /// Trainable-state bytes; include_projection adds the shared weights.
  /// Includes the per-sample reconstruction scratch score() keeps on the
  /// stack, so the figure still reflects the device working-set requirement.
  std::size_t memory_bytes(bool include_projection = false) const {
    return net_.memory_bytes(include_projection) +
           input_dim() * sizeof(double);
  }

 private:
  OsElm net_;
};

}  // namespace edgedrift::oselm
