// Hidden-layer activations for ELM/OS-ELM.
#pragma once

#include <span>
#include <string_view>

namespace edgedrift::oselm {

/// Supported hidden-layer nonlinearities.
enum class Activation {
  kSigmoid,   ///< 1 / (1 + exp(-x)) — the classic ELM choice.
  kTanh,      ///< tanh(x).
  kRelu,      ///< max(0, x).
  kIdentity,  ///< x (degenerates ELM into ridge regression; used in tests).
};

/// Applies the activation element-wise in place.
void apply_activation(Activation act, std::span<double> values);

/// Human-readable name ("sigmoid", ...).
std::string_view activation_name(Activation act);

}  // namespace edgedrift::oselm
