// Supervised OS-ELM classifier: a single OS-ELM trained on one-hot label
// targets, predicting by argmax output.
//
// This is the classic OS-ELM usage (Liang et al., 2006). The paper's
// discriminative model instead uses one *autoencoder per label* with
// argmin reconstruction error (Section 3.1) because that choice (a) works
// unsupervised once labels come from clustering, and (b) yields the
// anomaly score that gates the drift detector. The classifier is provided
// as the natural supervised alternative — `bench_ablation_model` compares
// the two — and as a generally useful library component.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/oselm/oselm.hpp"

namespace edgedrift::oselm {

/// One-hot OS-ELM classifier.
class Classifier {
 public:
  /// `num_labels` output nodes over the shared projection.
  Classifier(ProjectionPtr projection, std::size_t num_labels,
             double reg_lambda = 1e-2, double forgetting_factor = 1.0);

  std::size_t input_dim() const { return net_.input_dim(); }
  std::size_t num_labels() const { return net_.output_dim(); }
  bool initialized() const { return net_.initialized(); }

  /// Batch initial training on rows of X with integer labels.
  void init_train(const linalg::Matrix& x, std::span<const int> labels);

  /// Data-free init (pure-sequential start).
  void init_sequential() { net_.init_sequential(); }

  /// One sequential training step on a labeled sample.
  void train(std::span<const double> x, std::size_t label);

  /// argmax-output prediction.
  std::size_t predict(std::span<const double> x) const;

  /// Raw output activations (one per label); `out` length num_labels().
  void decision_values(std::span<const double> x,
                       std::span<double> out) const {
    net_.predict(x, out);
  }

  /// Margin = top activation minus runner-up (a cheap confidence proxy).
  double margin(std::span<const double> x) const;

  void reset() { net_.reset(); }
  std::size_t samples_seen() const { return net_.samples_seen(); }
  const OsElm& net() const { return net_; }

  std::size_t memory_bytes(bool include_projection = false) const {
    return net_.memory_bytes(include_projection) +
           (onehot_scratch_.capacity() + out_scratch_.capacity()) *
               sizeof(double);
  }

 private:
  OsElm net_;
  std::vector<double> onehot_scratch_;
  mutable std::vector<double> out_scratch_;
};

}  // namespace edgedrift::oselm
