// OS-ELM: Online Sequential Extreme Learning Machine (Liang et al., 2006)
// with the ONLAD forgetting mechanism (Tsukada et al., 2020) as an option.
//
// Model: y = beta^T g(A^T x + b) where the projection (A, b) is random and
// fixed; only beta (hidden_dim x output_dim) is trained. Training state is
// the pair (beta, P) with P = (H^T H + lambda I)^-1 over everything seen so
// far. The batch phase computes P by Cholesky; every subsequent sample is a
// rank-1 Sherman–Morrison step, so no inversion ever happens on-device —
// the property the paper relies on for the 264 kB Raspberry Pi Pico target.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/updates.hpp"
#include "edgedrift/linalg/workspace.hpp"
#include "edgedrift/oselm/projection.hpp"

namespace edgedrift::oselm {

/// Hyper-parameters of one OS-ELM instance.
struct OsElmConfig {
  std::size_t output_dim = 0;      ///< Target dimensionality.
  double reg_lambda = 1e-2;        ///< Ridge term of the initial training.
  double forgetting_factor = 1.0;  ///< 1.0 = plain OS-ELM; <1.0 = ONLAD.
};

/// A single OS-ELM regressor over a shared random projection.
class OsElm {
 public:
  /// Creates an untrained instance. Before the first init_train() /
  /// init_sequential() call, predict() is invalid.
  OsElm(ProjectionPtr projection, OsElmConfig config);

  std::size_t input_dim() const { return projection_->input_dim(); }
  std::size_t hidden_dim() const { return projection_->hidden_dim(); }
  std::size_t output_dim() const { return config_.output_dim; }
  const OsElmConfig& config() const { return config_; }
  const ProjectionPtr& projection() const { return projection_; }

  bool initialized() const { return initialized_; }

  /// Batch initial training on rows of X (inputs) and T (targets):
  /// P = (H^T H + lambda I)^-1, beta = P H^T T.
  void init_train(const linalg::Matrix& x, const linalg::Matrix& t);

  /// Data-free initialization: P = I / lambda, beta = 0. This is the
  /// recursive-least-squares prior that lets a model start training purely
  /// sequentially (used by the drift-reconstruction phase, Algorithm 2).
  void init_sequential();

  /// Sequential training on one (x, t) pair — the batch-size-1 fast path.
  void train(std::span<const double> x, std::span<const double> t);

  /// Sequential training with a precomputed hidden activation. `h` must be
  /// this network's projection of the trained sample (bit-equal to what
  /// hidden() would produce); the ensemble hot path computes it once per
  /// sample and shares it across prediction and training.
  void train_from_hidden(std::span<const double> h,
                         std::span<const double> t);

  /// Sequential training on a batch via the Woodbury identity. Equivalent to
  /// calling train() row by row when forgetting_factor == 1.
  void train_batch(const linalg::Matrix& x, const linalg::Matrix& t);

  /// Rank-k block training with precomputed hidden activations: `h` is
  /// [k x hidden_dim] rows of this network's projection of the trained
  /// samples, `t` the matching [k x output_dim] targets. One Woodbury block
  /// P-update plus one GEMM-pair beta update absorb the whole chunk —
  /// equivalent to k sequential train_from_hidden() steps in exact
  /// arithmetic when forgetting_factor == 1 (see linalg/updates.hpp for the
  /// rank-1 seam contract), but NOT bit-identical to them. This is the
  /// chunked-training hot path: every intermediate lives in grow-only
  /// member scratch, so after reserve_batch() (or the first call at the
  /// high-water chunk size) it is allocation-free. Bumps beta_version_ by
  /// one for the whole chunk; last_update_ph()/last_update_err() are NOT
  /// valid after a block step — packed-mirror owners must re-copy the block
  /// (MultiInstanceModel::repack_block) instead of replaying a rank-1 ger.
  void train_batch_from_hidden(const linalg::Matrix& h,
                               const linalg::Matrix& t);

  /// Pre-grows the rank-k block-training scratch (Woodbury workspace,
  /// transpose/residual/delta buffers) for chunks of up to `max_rows`
  /// samples, so the first train_batch_from_hidden() after initial training
  /// already runs allocation-free.
  void reserve_batch(std::size_t max_rows);

  /// y = prediction for x. `y` must have length output_dim(). The
  /// workspace overload is the allocation-free hot path: the hidden
  /// activation lives in `ws`, owned by the caller, so concurrent
  /// predict() calls on a frozen model never share scratch. The
  /// convenience overload keeps the activation on the stack (heap only
  /// for unusually wide hidden layers).
  void predict(std::span<const double> x, std::span<double> y,
               linalg::KernelWorkspace& ws) const;
  void predict(std::span<const double> x, std::span<double> y) const;

  /// y = beta^T h for a precomputed hidden activation — the shared-hidden
  /// entry point of the fused ensemble scorer (and of train()'s own
  /// prediction-error step). Bit-identical to predict() when `h` equals
  /// the projection of x.
  void predict_from_hidden(std::span<const double> h,
                           std::span<double> y) const;

  /// Batch prediction; rows of the result are predictions.
  linalg::Matrix predict_batch(const linalg::Matrix& x) const;

  /// Resets beta and P to the data-free prior, keeping the projection.
  void reset();

  /// Restores trained state (deserialization path). Shapes must match the
  /// projection and output dim.
  void restore_state(linalg::Matrix beta, linalg::Matrix p,
                     std::size_t samples_seen);

  /// Number of training samples absorbed since the last reset/init.
  std::size_t samples_seen() const { return samples_seen_; }

  const linalg::Matrix& beta() const { return beta_; }
  const linalg::Matrix& p() const { return p_; }

  /// Monotone counter bumped on every mutation of beta (init, sequential
  /// and batch training, reset, restore). Ensemble owners that keep a
  /// packed mirror of beta use it to detect when a block must be re-packed.
  std::uint64_t beta_version() const { return beta_version_; }

  /// Rank-1 factors of the most recent sequential train step:
  /// beta_new = beta_old + last_update_ph ⊗ last_update_err. Valid until
  /// the next training call. Lets an ensemble owner replay the exact
  /// element-wise update into a packed mirror of beta without recomputing
  /// it (see MultiInstanceModel's packed ensemble beta).
  std::span<const double> last_update_ph() const { return ph_scratch_; }
  std::span<const double> last_update_err() const { return err_scratch_; }

  /// Bytes of trainable state (beta + P + scratch). Pass
  /// include_projection=true to add the shared projection weights.
  std::size_t memory_bytes(bool include_projection = false) const;

 private:
  void hidden(std::span<const double> x, std::span<double> h) const {
    projection_->hidden(x, h);
  }

  /// RLS covariance resetting: restores P to the data-free prior, keeping
  /// beta (used when the forgetting factor makes P numerically explode).
  void reset_p_to_prior();

  /// Shared body of train()/train_from_hidden(): runs the P update and the
  /// beta rank-1 step against the activation already in h_scratch_.
  void train_on_hidden(std::span<const double> t);

  ProjectionPtr projection_;
  OsElmConfig config_;
  linalg::Matrix beta_;  ///< hidden_dim x output_dim.
  linalg::Matrix p_;     ///< hidden_dim x hidden_dim.
  bool initialized_ = false;
  std::size_t samples_seen_ = 0;
  std::uint64_t beta_version_ = 1;  ///< Bumped on every beta mutation.

  // Per-sample training scratch, reused to keep the hot path
  // allocation-free. predict() deliberately does not touch these so it is
  // safe to call concurrently on a frozen model.
  std::vector<double> h_scratch_;
  std::vector<double> ph_scratch_;
  std::vector<double> err_scratch_;
  // Block-update intermediates, reused across train_batch() /
  // train_batch_from_hidden() calls (grow-only; pre-grown by
  // reserve_batch() for the allocation-free chunked path).
  linalg::WoodburyWorkspace woodbury_ws_;
  linalg::Matrix batch_resid_;  ///< T - H beta: k x output_dim.
};

}  // namespace edgedrift::oselm
