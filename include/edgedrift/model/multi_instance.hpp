// The discriminative model of the paper (Section 3.1): one OS-ELM
// autoencoder instance per class label, all sharing a single random
// projection. Prediction returns the label whose instance reconstructs the
// sample best (smallest anomaly score); sequential training updates only
// that closest instance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/oselm/autoencoder.hpp"

namespace edgedrift::model {

/// Result of a model prediction.
struct Prediction {
  std::size_t label = 0;  ///< argmin-score instance index.
  double score = 0.0;     ///< Anomaly score of that instance.
};

/// Preallocated buffers for the batch scoring path. Reuse one workspace
/// across calls to keep the hot loop allocation-free; the matrices are
/// resized on demand.
struct BatchWorkspace {
  linalg::Matrix hidden;  ///< rows x hidden_dim: shared hidden activations.
  linalg::Matrix recon;   ///< rows x input_dim: per-instance reconstruction.
  linalg::Matrix scores;  ///< rows x num_labels: per-instance MSE scores.
};

/// Per-label OS-ELM autoencoder bank.
class MultiInstanceModel {
 public:
  /// `num_labels` instances over one shared projection.
  /// forgetting_factor < 1 turns every instance into an ONLAD autoencoder.
  MultiInstanceModel(std::size_t num_labels, oselm::ProjectionPtr projection,
                     double reg_lambda = 1e-2, double forgetting_factor = 1.0);

  std::size_t num_labels() const { return instances_.size(); }
  std::size_t input_dim() const { return instances_.front().input_dim(); }
  std::size_t hidden_dim() const { return instances_.front().hidden_dim(); }

  /// Batch initial training: instance L trains on the rows of X whose label
  /// is L. Labels must be in [0, num_labels).
  void init_train(const linalg::Matrix& x, std::span<const int> labels);

  /// Data-free init of every instance (pure-sequential start).
  void init_sequential();

  /// Anomaly score of every instance; `out` must have length num_labels().
  /// The workspace overload is the allocation-free hot path.
  void scores(std::span<const double> x, std::span<double> out,
              linalg::KernelWorkspace& ws) const;
  void scores(std::span<const double> x, std::span<double> out) const;

  /// Label = argmin instance score (Algorithm 1 lines 6–7). Thread-safe on
  /// a frozen model: uses no shared scratch. The workspace overload is the
  /// allocation-free hot path — `ws` is caller-owned, one per thread of
  /// control.
  Prediction predict(std::span<const double> x,
                     linalg::KernelWorkspace& ws) const;
  Prediction predict(std::span<const double> x) const;

  /// Scores every instance on every row of X via the GEMM kernels:
  /// ws.scores(r, l) is bit-identical to instance(l).score(x.row(r)).
  void score_batch(const linalg::Matrix& x, BatchWorkspace& ws) const;

  /// Batch prediction: out[r] is identical to predict(x.row(r)). `out`
  /// must have length x.rows().
  void predict_batch(const linalg::Matrix& x, BatchWorkspace& ws,
                     std::span<Prediction> out) const;

  /// Anomaly score of one specific instance.
  double score_of(std::span<const double> x, std::size_t label,
                  linalg::KernelWorkspace& ws) const;
  double score_of(std::span<const double> x, std::size_t label) const;

  /// Predicts, then sequentially trains the winning instance; returns the
  /// prediction made before training.
  Prediction train_closest(std::span<const double> x,
                           linalg::KernelWorkspace& ws);
  Prediction train_closest(std::span<const double> x);

  /// Sequentially trains the given instance on x.
  void train_label(std::span<const double> x, std::size_t label);

  /// Resets every instance's trainable state, keeping the projection.
  void reset();

  /// Reorders instances so position i holds the previous instance perm[i].
  /// Used after model reconstruction to re-align rebuilt clusters with the
  /// pre-drift label identities.
  void apply_permutation(std::span<const std::size_t> perm);

  const oselm::Autoencoder& instance(std::size_t label) const;

  /// Mutable instance access (persistence / state restoration).
  oselm::Autoencoder& instance_mutable(std::size_t label);
  const oselm::ProjectionPtr& projection() const { return projection_; }

  /// Bytes: per-instance trainable state plus the shared projection once.
  std::size_t memory_bytes() const;

 private:
  oselm::ProjectionPtr projection_;
  std::vector<oselm::Autoencoder> instances_;
};

}  // namespace edgedrift::model
