// The discriminative model of the paper (Section 3.1): one OS-ELM
// autoencoder instance per class label, all sharing a single random
// projection. Prediction returns the label whose instance reconstructs the
// sample best (smallest anomaly score); sequential training updates only
// that closest instance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "edgedrift/linalg/matrix.hpp"
#include "edgedrift/linalg/numerics.hpp"
#include "edgedrift/linalg/quant.hpp"
#include "edgedrift/oselm/autoencoder.hpp"

namespace edgedrift::model {

/// Result of a model prediction.
struct Prediction {
  std::size_t label = 0;  ///< argmin-score instance index.
  double score = 0.0;     ///< Anomaly score of that instance.
};

/// Preallocated buffers for the batch scoring path. Reuse one workspace
/// across calls to keep the hot loop allocation-free; the matrices are
/// grow-only (Matrix::resize_zero never reallocates within the high-water
/// capacity), so after reserve() — or after the first batch — repeat
/// batches of any shape up to the high-water mark touch the heap zero
/// times.
struct BatchWorkspace {
  linalg::Matrix hidden;  ///< rows x hidden_dim: shared hidden activations.
  linalg::Matrix recon;   ///< rows x (num_labels * input_dim): fused recon.
  linalg::Matrix scores;  ///< rows x num_labels: per-instance MSE scores.

  // Tiered-scoring scratch (empty — zero bytes — in the f64 tier).
  linalg::MatrixF32 hidden_f32;  ///< Narrowed hidden activations.
  linalg::MatrixF32 input_f32;   ///< Narrowed input rows (f32 MSE operand).
  linalg::MatrixF32 recon_f32;   ///< f32/i8 fused reconstruction.
  linalg::AlignedVector<std::int8_t> q_row;   ///< i8: one row's hidden codes.
  linalg::AlignedVector<std::int32_t> accum;  ///< i8: int32 accumulators.

  // Chunked-training gather scratch: one winner bucket is gathered at a
  // time, so the buffers are sized by the chunk, not the batch.
  linalg::Matrix bucket_h;                 ///< Bucket rows' hidden rows.
  linalg::Matrix bucket_t;                 ///< Bucket rows' targets (inputs).
  std::vector<std::size_t> bucket_counts;  ///< Per-label winner counts.

  /// Pre-grows every buffer to the given batch geometry so the first
  /// score_batch() call is already allocation-free. Pass the pipeline's
  /// tier to also pre-grow that tier's scratch.
  void reserve(std::size_t rows, std::size_t input_dim,
               std::size_t hidden_dim, std::size_t num_labels,
               linalg::NumericsTier tier = linalg::NumericsTier::kExactF64) {
    hidden.resize_zero(rows, hidden_dim);
    recon.resize_zero(rows, num_labels * input_dim);
    scores.resize_zero(rows, num_labels);
    if (tier != linalg::NumericsTier::kExactF64) {
      hidden_f32.resize_zero(rows, hidden_dim);
      input_f32.resize_zero(rows, input_dim);
      recon_f32.resize_zero(rows, num_labels * input_dim);
    }
    if (tier == linalg::NumericsTier::kQuantI8) {
      if (q_row.size() < hidden_dim) q_row.resize(hidden_dim);
      if (accum.size() < num_labels * input_dim) {
        accum.resize(num_labels * input_dim);
      }
    }
  }

  /// Pre-grows the chunked-training gather scratch for chunks of up to
  /// `chunk` rows (allocation-free chunked training contract).
  void reserve_chunk_train(std::size_t chunk, std::size_t input_dim,
                           std::size_t hidden_dim, std::size_t num_labels) {
    bucket_h.resize_zero(chunk, hidden_dim);
    bucket_t.resize_zero(chunk, input_dim);
    if (bucket_counts.size() < num_labels) bucket_counts.resize(num_labels);
  }
};

/// What one chunked training call did — feeds the obs chunk counters.
struct ChunkTrainStats {
  std::size_t rows = 0;     ///< Samples absorbed by block updates.
  std::size_t buckets = 0;  ///< Rank-k updates issued (non-empty buckets).
  std::size_t replica_refreshes = 0;  ///< Tier replica re-derivations.
};

/// Per-label OS-ELM autoencoder bank.
class MultiInstanceModel {
 public:
  /// `num_labels` instances over one shared projection.
  /// forgetting_factor < 1 turns every instance into an ONLAD autoencoder.
  MultiInstanceModel(std::size_t num_labels, oselm::ProjectionPtr projection,
                     double reg_lambda = 1e-2, double forgetting_factor = 1.0);

  std::size_t num_labels() const { return instances_.size(); }
  std::size_t input_dim() const { return instances_.front().input_dim(); }
  std::size_t hidden_dim() const { return instances_.front().hidden_dim(); }

  /// Batch initial training: instance L trains on the rows of X whose label
  /// is L. Labels must be in [0, num_labels).
  void init_train(const linalg::Matrix& x, std::span<const int> labels);

  /// Data-free init of every instance (pure-sequential start).
  void init_sequential();

  /// Anomaly score of every instance; `out` must have length num_labels().
  /// The workspace overload is the fused allocation-free hot path: one
  /// shared hidden projection plus a single matvec against the packed
  /// ensemble beta reconstructs all instances at once. The convenience
  /// overload is the retained per-instance reference path — it walks the
  /// instances one by one; tests/test_fused_scoring.cpp pins the two
  /// bit-identical within a build.
  void scores(std::span<const double> x, std::span<double> out,
              linalg::KernelWorkspace& ws) const;
  void scores(std::span<const double> x, std::span<double> out) const;

  /// Label = argmin instance score (Algorithm 1 lines 6–7). Thread-safe on
  /// a frozen model: uses no shared scratch. The workspace overload is the
  /// allocation-free hot path — `ws` is caller-owned, one per thread of
  /// control.
  Prediction predict(std::span<const double> x,
                     linalg::KernelWorkspace& ws) const;
  Prediction predict(std::span<const double> x) const;

  /// predict() with the hidden activation h = g(x * A + b) supplied by the
  /// caller (same contract on `h` as score_batch_from_hidden, for one row).
  /// Bit-identical to predict(x, ws): both run the identical scalar fused
  /// scorer after the projection, and the coalesced mega-batch projection
  /// is row-independent and bit-identical to the scalar one. This is the
  /// serving layer's single-row scatter path — at 1-row bursts the batch
  /// entry's per-call machinery costs more than the projection it skips.
  Prediction predict_from_hidden(std::span<const double> x,
                                 std::span<const double> h,
                                 linalg::KernelWorkspace& ws) const;

  /// Scores every instance on every row of X with one fused
  /// [rows x (num_labels * input_dim)] GEMM against the packed ensemble
  /// beta, then a vectorized per-label MSE reduction:
  /// ws.scores(r, l) is bit-identical to instance(l).score(x.row(r)).
  /// X is a row-block view (Matrix converts implicitly), so a contiguous
  /// row range — a drain burst in a ring slab, a calibration chunk — scores
  /// in place with zero copies.
  void score_batch(linalg::ConstMatrixView x, BatchWorkspace& ws) const;

  /// score_batch with the hidden activations H = g(X * A + b) supplied by
  /// the caller instead of projected here. `h` must be [x.rows() x
  /// hidden_dim] rows computed by this model's projection (or any
  /// projection with an equal fingerprint) on exactly the rows of `x` — the
  /// serving layer's coalesced drain projects one mega-batch for a whole
  /// projection group and scatters row blocks of it into each stream's
  /// scoring through this entry. Because hidden_batch_into is row-
  /// independent and bit-identical across batch shapes, the result is
  /// bit-identical to score_batch(x, ws) at f64 and identical to it in the
  /// approximate tiers (same narrowed / quantized operands).
  void score_batch_from_hidden(linalg::ConstMatrixView x,
                               linalg::ConstMatrixView h,
                               BatchWorkspace& ws) const;

  /// Batch prediction: out[r] is identical to predict(x.row(r)). `out`
  /// must have length x.rows().
  void predict_batch(linalg::ConstMatrixView x, BatchWorkspace& ws,
                     std::span<Prediction> out) const;

  /// predict_batch from caller-supplied hidden activations (see
  /// score_batch_from_hidden for the contract on `h`).
  void predict_batch_from_hidden(linalg::ConstMatrixView x,
                                 linalg::ConstMatrixView h, BatchWorkspace& ws,
                                 std::span<Prediction> out) const;

  /// Anomaly score of one specific instance.
  double score_of(std::span<const double> x, std::size_t label,
                  linalg::KernelWorkspace& ws) const;
  double score_of(std::span<const double> x, std::size_t label) const;

  /// Predicts, then sequentially trains the winning instance; returns the
  /// prediction made before training. The workspace overload projects the
  /// sample once and shares the hidden vector between the fused scorer and
  /// the winner's training step (err = t - beta^T h reuses it).
  Prediction train_closest(std::span<const double> x,
                           linalg::KernelWorkspace& ws);
  Prediction train_closest(std::span<const double> x);

  /// Sequentially trains the given instance on x.
  void train_label(std::span<const double> x, std::size_t label);

  /// Chunked training: buckets the rows of `x` by `labels[r]` (the winning
  /// instance per row, chosen by the caller — typically from a batch score
  /// of the chunk against the pre-chunk model), then applies ONE rank-k
  /// Woodbury block update per non-empty bucket via
  /// Autoencoder::train_batch_from_hidden, repacks that ensemble block, and
  /// refreshes its f32/i8 replica once per bucket instead of once per
  /// sample — the requant amortization at the heart of the chunked path.
  /// `h` must be this model's hidden activations of exactly the rows of `x`
  /// (same contract as score_batch_from_hidden); `labels` has one winner per
  /// row. Within a bucket, rows keep their stream order. Equivalent to the
  /// per-sample winner loop in exact arithmetic when every row's winner is
  /// computed against the same frozen pre-chunk model, NOT bit-identical —
  /// callers gate it behind an opt-in chunk size. Allocation-free after
  /// reserve_chunk_train().
  ChunkTrainStats train_buckets_from_hidden(linalg::ConstMatrixView x,
                                            linalg::ConstMatrixView h,
                                            std::span<const std::size_t> labels,
                                            BatchWorkspace& ws);

  /// Pre-grows every instance's rank-k block scratch and the workspace's
  /// bucket gather buffers for chunks of up to `chunk` rows.
  void reserve_chunk_train(std::size_t chunk, BatchWorkspace& ws);

  /// Resets every instance's trainable state, keeping the projection.
  void reset();

  /// Reorders instances so position i holds the previous instance perm[i].
  /// Used after model reconstruction to re-align rebuilt clusters with the
  /// pre-drift label identities.
  void apply_permutation(std::span<const std::size_t> perm);

  const oselm::Autoencoder& instance(std::size_t label) const;

  /// Mutable instance access (persistence / state restoration). Callers
  /// that mutate an instance's beta through this handle must call
  /// repack_ensemble() afterwards so the fused scorer sees the new state.
  oselm::Autoencoder& instance_mutable(std::size_t label);
  const oselm::ProjectionPtr& projection() const { return projection_; }

  /// Rebuilds the packed ensemble beta from every instance's beta (exact
  /// element copies). The model keeps the mirror in sync through its own
  /// training APIs; this is only needed after out-of-band mutation via
  /// instance_mutable() (e.g. checkpoint restore).
  void repack_ensemble();

  /// Column-blocked view of the whole ensemble: packed(i, c * input_dim + j)
  /// == instance(c).net().beta()(i, j). One matvec/GEMM against it
  /// reconstructs every instance at once.
  const linalg::Matrix& packed_beta() const { return packed_beta_; }

  /// Selects the scoring tier (linalg/numerics.hpp). Training and the f64
  /// packed master are untouched in every tier; a non-f64 tier builds its
  /// shadow replica of the packed beta immediately and keeps it refreshed
  /// from the master after every beta mutation. Idempotent per tier value.
  void set_numerics_tier(linalg::NumericsTier tier);
  linalg::NumericsTier numerics_tier() const { return tier_; }

  /// Monotone counter bumped every time a replica block is re-narrowed /
  /// re-quantized from the f64 master — the beta_version discipline's twin
  /// for the approximate tiers. Stays 0 while the model is in the f64 tier.
  std::uint64_t quantization_epoch() const { return quantization_epoch_; }

  /// The f32 shadow replica (valid while the f32 tier is active).
  const linalg::MatrixF32& packed_beta_f32() const { return packed_beta_f32_; }
  /// The int8 replica with per-column scales (valid while the i8 tier is
  /// active).
  const linalg::QuantizedMatrix& packed_beta_q() const {
    return packed_beta_q_;
  }

  /// Bytes: per-instance trainable state plus the shared projection once.
  /// Deliberately excludes the packed ensemble mirror: the device profile
  /// (mcu::StaticPipeline) stores beta exactly once, so the mirror is a
  /// host-side throughput artifact, not part of the Table 4 working set.
  std::size_t memory_bytes() const;

 private:
  /// Fused scorer core: one matvec of the shared hidden activation `h`
  /// against the active tier's packed beta reconstructs every instance,
  /// then the shared MSE kernel reduces each block against x. Dispatches on
  /// tier_; scratch comes from `ws`.
  void scores_from_hidden(std::span<const double> h,
                          std::span<const double> x, std::span<double> out,
                          linalg::KernelWorkspace& ws) const;

  /// Shared tail of score_batch / score_batch_from_hidden: everything after
  /// the projection (tier dispatch, fused reconstruction, MSE reduction).
  /// `h` holds the hidden activations of exactly the rows of `x`.
  void score_batch_core(linalg::ConstMatrixView x, linalg::ConstMatrixView h,
                        BatchWorkspace& ws) const;

  /// Copies instance c's beta into its column block of the packed mirror.
  void repack_block(std::size_t c);

  /// Replays the rank-1 step of instance c's most recent sequential train
  /// into the packed mirror (writes only the owning column block; exactly
  /// the element-wise madds the dense ger applied to the instance's beta).
  void sync_block_after_train(std::size_t c);

  /// True when every packed block matches its instance's beta version.
  bool packed_in_sync() const;

  /// Re-derives instance c's column block of the active tier's replica from
  /// the f64 master (narrow for f32, re-quantize with fresh scales for i8)
  /// and bumps the quantization epoch. No-op contractually excluded: only
  /// called when tier_ != kExactF64.
  void refresh_replica_block(std::size_t c);

  /// True when every replica block was refreshed at its packed version.
  bool replicas_in_sync() const;

  oselm::ProjectionPtr projection_;
  std::vector<oselm::Autoencoder> instances_;
  /// hidden_dim x (num_labels * input_dim): all betas, column-blocked.
  linalg::Matrix packed_beta_;
  /// Per-block OsElm::beta_version() snapshot at the last sync.
  std::vector<std::uint64_t> packed_versions_;

  linalg::NumericsTier tier_ = linalg::NumericsTier::kExactF64;
  /// f32 shadow of packed_beta_ (kFastF32 tier only).
  linalg::MatrixF32 packed_beta_f32_;
  /// int8 + per-column-scale replica of packed_beta_ (kQuantI8 tier only).
  linalg::QuantizedMatrix packed_beta_q_;
  /// Per-block packed_versions_ snapshot at the last replica refresh.
  std::vector<std::uint64_t> replica_versions_;
  std::uint64_t quantization_epoch_ = 0;
};

}  // namespace edgedrift::model
